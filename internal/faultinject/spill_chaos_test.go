package faultinject_test

// Spill-tier chaos: kill the process mid-spill (torn segment tail) and
// hole-punch a sealed segment out from under a live engine, then assert the
// crash-safety contract — no acknowledged state lost, corrupt segments
// quarantined (not fatal), the engine keeps serving, and a reboot's exports
// are byte-identical to an all-resident engine that learned the same
// reports. Run with the rest of the chaos suite: `make chaos`.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"oak"
	"oak/internal/faultinject"
)

// spillClock is a deterministic engine clock so exports from independently
// built engines are byte-comparable.
type spillClock struct {
	mu sync.Mutex
	t  time.Time
}

func newSpillClock() *spillClock {
	return &spillClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *spillClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *spillClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// spillReport is a report whose s1.com fetch is slow enough to violate and
// activate the jquery rule.
func spillReport(t *testing.T, user string) *oak.Report {
	t.Helper()
	rep, err := oak.UnmarshalReport([]byte(fmt.Sprintf(`{"userId":%q,"page":"/index.html","entries":[
	  {"url":"http://s1.com/jquery.js","serverAddr":"ip-s1.com","sizeBytes":1024,"durationMillis":2000,"kind":"script"},
	  {"url":"http://a.example/a.png","serverAddr":"ip-a.example","sizeBytes":1024,"durationMillis":100},
	  {"url":"http://b.example/b.png","serverAddr":"ip-b.example","sizeBytes":1024,"durationMillis":110},
	  {"url":"http://c.example/c.png","serverAddr":"ip-c.example","sizeBytes":1024,"durationMillis":95}
	]}`, user)))
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// spillSegs lists the live (non-quarantined) segment files in dir, oldest
// first — segment names are monotonic hex sequence numbers.
func spillSegs(t *testing.T, dir string) []string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(segs)
	return segs
}

// TestSpillChaosKillMidSpill crashes an engine that has spilled profiles
// beyond its last statefile save, with a torn half-written frame at the
// newest segment's tail. The reboot must truncate the torn tail (not
// quarantine, not fail boot), keep every user, and prefer the newer spilled
// copies over the older statefile snapshot — byte-identically to a
// reference engine that learned the surviving state with no spill tier.
func TestSpillChaosKillMidSpill(t *testing.T) {
	dir := t.TempDir()
	state := filepath.Join(t.TempDir(), "oak-state.json")
	rule := chaosRule(t)

	clock := newSpillClock()
	engine, err := oak.NewEngine([]*oak.Rule{rule},
		oak.WithClock(clock.Now), oak.WithShards(1),
		oak.WithProfileResidency(oak.ResidencyConfig{Dir: dir, MaxProfiles: 3}))
	if err != nil {
		t.Fatal(err)
	}
	const users = 10
	uid := func(i int) string { return fmt.Sprintf("k%02d", i) }
	for i := 1; i <= users; i++ {
		if _, err := engine.HandleReport(spillReport(t, uid(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := engine.SaveStateFile(state); err != nil {
		t.Fatal(err)
	}

	// Past the checkpoint: six users report again (their violation counters
	// advance), and the cap keeps spilling the cold ones underneath.
	clock.Advance(time.Minute)
	for i := 1; i <= 6; i++ {
		if _, err := engine.HandleReport(spillReport(t, uid(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Durability line at the kill: spilled profiles are fsynced and must
	// survive; post-save state still resident rolls back to the statefile.
	durable := map[string]bool{}
	for i := 1; i <= users; i++ {
		durable[uid(i)] = engine.Residency(uid(i)) == "spilled"
	}
	if st, ok := engine.SpillStatus(); !ok || st.ProfilesSpilled == 0 {
		t.Fatal("nothing spilled before the kill; chaos is vacuous")
	}

	// Kill: no Close, no save — and the torn frame a mid-append power cut
	// leaves behind (a length prefix promising bytes that never arrived).
	segs := spillSegs(t, dir)
	if len(segs) == 0 {
		t.Fatal("no segment files on disk")
	}
	tail, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tail.Write([]byte{0x7F, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	tail.Close()

	// Reboot over the same spill dir + statefile.
	clock2 := newSpillClock()
	clock2.Advance(time.Minute)
	rebooted, err := oak.NewEngine([]*oak.Rule{rule},
		oak.WithClock(clock2.Now), oak.WithShards(1),
		oak.WithProfileResidency(oak.ResidencyConfig{Dir: dir, MaxProfiles: 3}))
	if err != nil {
		t.Fatalf("reboot over torn segment: %v", err)
	}
	defer rebooted.Close()
	if _, err := rebooted.LoadStateFile(state); err != nil {
		t.Fatal(err)
	}
	if rebooted.SpillDegraded() {
		st, _ := rebooted.SpillStatus()
		t.Fatalf("torn tail degraded the tier (want silent truncation): %+v", st)
	}
	if got := rebooted.Users(); got != users {
		t.Fatalf("rebooted with %d users, want %d", got, users)
	}
	for i := 1; i <= users; i++ {
		want := 1
		if durable[uid(i)] && i <= 6 {
			want = 2 // the newer spilled copy, not the statefile's
		}
		snap, ok := rebooted.Snapshot(uid(i))
		if !ok || snap.Violations["ip-s1.com"] != want {
			t.Errorf("%s after reboot: ok=%v violations=%v, want ip-s1.com:%d",
				uid(i), ok, snap.Violations, want)
		}
	}

	// Byte-identity: an engine with no spill tier that learned exactly the
	// surviving state must export the same snapshot.
	refClock := newSpillClock()
	ref, err := oak.NewEngine([]*oak.Rule{rule}, oak.WithClock(refClock.Now), oak.WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= users; i++ {
		if _, err := ref.HandleReport(spillReport(t, uid(i))); err != nil {
			t.Fatal(err)
		}
	}
	refClock.Advance(time.Minute)
	for i := 1; i <= 6; i++ {
		if durable[uid(i)] {
			if _, err := ref.HandleReport(spillReport(t, uid(i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	got, err := rebooted.ExportSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.ExportSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("post-crash export differs from all-resident reference:\n--- rebooted\n%s\n--- reference\n%s", got, want)
	}
}

// TestSpillChaosHolePunch zero-fills a span of a sealed segment under a
// live engine — the filesystem's version of a lost write. Touching the
// spilled users must quarantine the damaged segment (typed CRC failure, not
// a crash), count spill errors, and leave the engine serving; a reboot over
// the statefile saved before the punch restores every user byte-identically
// to an all-resident reference.
func TestSpillChaosHolePunch(t *testing.T) {
	dir := t.TempDir()
	state := filepath.Join(t.TempDir(), "oak-state.json")
	rule := chaosRule(t)

	clock := newSpillClock()
	engine, err := oak.NewEngine([]*oak.Rule{rule},
		oak.WithClock(clock.Now), oak.WithShards(1),
		oak.WithProfileResidency(oak.ResidencyConfig{Dir: dir, MaxProfiles: 2, SegmentBytes: 1}))
	if err != nil {
		t.Fatal(err)
	}
	defer engine.Close()
	const users = 8
	uid := func(i int) string { return fmt.Sprintf("h%02d", i) }
	for i := 1; i <= users; i++ {
		if _, err := engine.HandleReport(spillReport(t, uid(i))); err != nil {
			t.Fatal(err)
		}
	}
	segs := spillSegs(t, dir)
	if len(segs) < 2 {
		t.Fatalf("segment files = %d, want >= 2 sealed segments", len(segs))
	}
	// Checkpoint before the damage: every user is acknowledged in the
	// statefile, so nothing the punch destroys is unrecoverable.
	if err := engine.SaveStateFile(state); err != nil {
		t.Fatal(err)
	}

	// Punch the oldest (sealed) segment. HolePunch zeroes a seeded span of
	// file content; retry seeds until the bytes actually change, in case a
	// span lands on bytes that were already zero.
	victim := segs[0]
	before, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	punched := false
	for seed := int64(1); seed <= 32; seed++ {
		if err := faultinject.CorruptFile(victim, seed, faultinject.HolePunch); err != nil {
			t.Fatal(err)
		}
		after, err := os.ReadFile(victim)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(before, after) {
			punched = true
			break
		}
	}
	if !punched {
		t.Fatal("hole punch never changed the segment bytes")
	}

	// Touch every spilled user: rehydrations from the punched segment must
	// fail closed — quarantine, count, keep going.
	lost := 0
	for i := 1; i <= users; i++ {
		engine.Snapshot(uid(i))
		if engine.Residency(uid(i)) == "none" {
			lost++
		}
	}
	if lost == 0 {
		t.Fatal("no user lost to the punched segment; damage never surfaced")
	}
	if !engine.SpillDegraded() {
		t.Error("SpillDegraded = false after a quarantined segment")
	}
	st, _ := engine.SpillStatus()
	if len(st.QuarantinedSegments) == 0 {
		t.Error("no segment quarantined after CRC failure")
	}
	if st.SpillErrors == 0 {
		t.Error("SpillErrors = 0 after hole punch")
	}
	if _, err := os.Stat(victim + ".quarantined"); err != nil {
		t.Errorf("quarantined segment not set aside for the operator: %v", err)
	}
	// Degraded, not down: ingest and page rewriting still answer.
	if _, err := engine.HandleReport(spillReport(t, "fresh-user")); err != nil {
		t.Errorf("ingest failed while degraded: %v", err)
	}
	page := `<script src="http://s1.com/jquery.js"></script>`
	if out, _ := engine.ModifyPage(uid(users), "/index.html", page); out == page {
		t.Error("page rewriting stopped while degraded")
	}

	// Reboot over the pre-punch statefile: the quarantined segment stays
	// aside, the snapshot restores what it held, and the export matches an
	// engine that was never capped.
	rebooted, err := oak.NewEngine([]*oak.Rule{rule},
		oak.WithClock(newSpillClock().Now), oak.WithShards(1),
		oak.WithProfileResidency(oak.ResidencyConfig{Dir: dir, MaxProfiles: 2, SegmentBytes: 1}))
	if err != nil {
		t.Fatal(err)
	}
	defer rebooted.Close()
	if _, err := rebooted.LoadStateFile(state); err != nil {
		t.Fatal(err)
	}
	if rebooted.SpillDegraded() {
		t.Error("reboot re-entered degraded mode; quarantine should persist out of the scan set")
	}
	// users from the statefile, plus fresh-user: acked after the checkpoint
	// but durably spilled before the "crash", so it survives from the log.
	if got := rebooted.Users(); got != users+1 {
		t.Fatalf("rebooted with %d users, want %d", got, users+1)
	}
	ref, err := oak.NewEngine([]*oak.Rule{rule}, oak.WithClock(newSpillClock().Now), oak.WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= users; i++ {
		if _, err := ref.HandleReport(spillReport(t, uid(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ref.HandleReport(spillReport(t, "fresh-user")); err != nil {
		t.Fatal(err)
	}
	got, err := rebooted.ExportSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.ExportSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("post-punch export differs from all-resident reference:\n--- rebooted\n%s\n--- reference\n%s", got, want)
	}
}
