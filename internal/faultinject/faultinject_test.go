package faultinject

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

func testBackend(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write(make([]byte, 4096))
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestTransportPassthroughAtZeroRates(t *testing.T) {
	ts := testBackend(t)
	c := &http.Client{Transport: &Transport{Seed: 1}}
	for i := 0; i < 10; i++ {
		resp, err := c.Get(ts.URL)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || len(data) != 4096 {
			t.Fatalf("request %d: read %d bytes, err %v", i, len(data), err)
		}
	}
	st := (&Transport{}).Stats()
	if st.Requests != 0 {
		t.Errorf("fresh transport stats = %+v", st)
	}
}

func TestTransportInjectsErrors(t *testing.T) {
	ts := testBackend(t)
	tr := &Transport{Seed: 7, ErrorRate: 1}
	c := &http.Client{Transport: tr}
	_, err := c.Get(ts.URL)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if st := tr.Stats(); st.Errors != 1 || st.Requests != 1 {
		t.Errorf("stats = %+v, want 1 request, 1 error", st)
	}
}

func TestTransportTruncatesBodies(t *testing.T) {
	ts := testBackend(t)
	tr := &Transport{Seed: 7, TruncateRate: 1}
	c := &http.Client{Transport: tr}
	resp, err := c.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("read err = %v, want unexpected EOF", err)
	}
	if len(data) != 2048 {
		t.Errorf("read %d bytes before the tear, want 2048", len(data))
	}
	if st := tr.Stats(); st.Truncated != 1 {
		t.Errorf("stats = %+v, want 1 truncation", st)
	}
}

func TestTransportDeterministicUnderSeed(t *testing.T) {
	ts := testBackend(t)
	outcomes := func() []bool {
		tr := &Transport{Seed: 99, ErrorRate: 0.3}
		c := &http.Client{Transport: tr}
		var out []bool
		for i := 0; i < 50; i++ {
			resp, err := c.Get(ts.URL)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			out = append(out, err == nil)
		}
		return out
	}
	a, b := outcomes(), outcomes()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d", i)
		}
	}
	var failed int
	for _, ok := range a {
		if !ok {
			failed++
		}
	}
	if failed == 0 || failed == len(a) {
		t.Errorf("error rate 0.3 produced %d/%d failures", failed, len(a))
	}
}

func TestCorruptFileModes(t *testing.T) {
	dir := t.TempDir()
	write := func(name string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, make([]byte, 1000), 0o600); err != nil {
			t.Fatal(err)
		}
		return p
	}

	p := write("trunc")
	if err := CorruptFile(p, 1, Truncate); err != nil {
		t.Fatal(err)
	}
	if data, _ := os.ReadFile(p); len(data) != 500 {
		t.Errorf("Truncate left %d bytes, want 500", len(data))
	}

	p = write("empty")
	if err := CorruptFile(p, 1, Empty); err != nil {
		t.Fatal(err)
	}
	if data, _ := os.ReadFile(p); len(data) != 0 {
		t.Errorf("Empty left %d bytes", len(data))
	}

	p = write("flip")
	if err := CorruptFile(p, 42, FlipBytes); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(p)
	if len(data) != 1000 {
		t.Fatalf("FlipBytes changed length to %d", len(data))
	}
	changed := 0
	for _, b := range data {
		if b != 0 {
			changed++
		}
	}
	if changed == 0 {
		t.Error("FlipBytes flipped nothing")
	}
	// Determinism: the same seed flips the same bytes.
	p2 := write("flip2")
	if err := CorruptFile(p2, 42, FlipBytes); err != nil {
		t.Fatal(err)
	}
	data2, _ := os.ReadFile(p2)
	if string(data) != string(data2) {
		t.Error("FlipBytes not deterministic under the same seed")
	}

	if err := CorruptFile(filepath.Join(dir, "missing"), 1, Truncate); err == nil {
		t.Error("corrupting a missing file: want error")
	}
}
