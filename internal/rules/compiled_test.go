package rules

import (
	"reflect"
	"strings"
	"testing"
)

func equivCheck(t *testing.T, acts []Activation, path, page string) {
	t.Helper()
	wantOut, wantApplied := Apply(page, path, acts)
	a := NewApplier(acts, path)
	gotOut, gotApplied := a.Apply(page)
	if gotOut != wantOut {
		t.Errorf("compiled output diverges:\n got %q\nwant %q", gotOut, wantOut)
	}
	if !reflect.DeepEqual(gotApplied, wantApplied) {
		t.Errorf("compiled Applied diverges:\n got %+v\nwant %+v", gotApplied, wantApplied)
	}
}

func TestApplierBasicReplacement(t *testing.T) {
	acts := []Activation{
		{Rule: &Rule{ID: "jq", Type: TypeReplaceSame, Default: `<script src="http://s1.com/jquery.js">`,
			Alternatives: []string{`<script src="http://s2.net/jquery.js">`}, Scope: "*"}},
		{Rule: &Rule{ID: "px", Type: TypeRemove, Default: `<img src="http://tracker.example/pixel.gif">`, Scope: "*"}},
		{Rule: &Rule{ID: "ghost", Type: TypeRemove, Default: "never-on-page", Scope: "*"}},
	}
	a := NewApplier(acts, "/index.html")
	if !a.Fast() {
		t.Fatal("distinct HTML rules should compile to the fast path")
	}
	equivCheck(t, acts, "/index.html", applyPage)
}

func TestApplierNoMatchReturnsSameString(t *testing.T) {
	acts := []Activation{
		{Rule: &Rule{ID: "r", Type: TypeRemove, Default: "<blink>", Scope: "*"}},
	}
	a := NewApplier(acts, "/")
	out, applied := a.Apply(applyPage)
	if out != applyPage || applied != nil {
		t.Fatalf("no-op apply returned (%q, %+v)", out, applied)
	}
	// The returned string must be the original, not a copy.
	if allocs := testing.AllocsPerRun(100, func() {
		a.Apply(applyPage)
	}); allocs != 0 {
		t.Errorf("no-op Apply allocates %v times per call, want 0", allocs)
	}
}

func TestApplierEmptySet(t *testing.T) {
	a := NewApplier(nil, "/")
	out, applied := a.Apply(applyPage)
	if out != applyPage || applied != nil {
		t.Fatalf("empty applier returned (%q, %+v)", out, applied)
	}
}

func TestApplierScopeFiltering(t *testing.T) {
	acts := []Activation{
		{Rule: &Rule{ID: "scoped", Type: TypeRemove, Default: "tracker.example", Scope: "/checkout/*"}},
	}
	equivCheck(t, acts, "/index.html", applyPage)
	equivCheck(t, acts, "/checkout/cart", applyPage)
}

func TestApplierSubRulesFallBack(t *testing.T) {
	acts := []Activation{
		{Rule: &Rule{ID: "sub", Type: TypeReplaceAlt, Default: "AAA", Alternatives: []string{"BBB"},
			Scope: "*", SubRules: []SubRule{{Find: "x", Replace: "y"}}}},
	}
	a := NewApplier(acts, "/")
	if a.Fast() {
		t.Fatal("sub-rules must force the sequential fallback")
	}
	equivCheck(t, acts, "/", "xAAAx")
}

func TestApplierInterferingReplacementFallsBack(t *testing.T) {
	// Rule 2's replacement contains rule 1's default: sequential application
	// cascades (A→B then B→C yields C from A), which one pass cannot do.
	acts := []Activation{
		{Rule: &Rule{ID: "1", Type: TypeReplaceAlt, Default: "A", Alternatives: []string{"B"}, Scope: "*"}},
		{Rule: &Rule{ID: "2", Type: TypeReplaceAlt, Default: "B", Alternatives: []string{"C"}, Scope: "*"}},
	}
	a := NewApplier(acts, "/")
	if a.Fast() {
		t.Fatal("pattern-in-replacement must force the sequential fallback")
	}
	equivCheck(t, acts, "/", "A")
	equivCheck(t, acts, "/", "AB")
}

func TestApplierJunctionCreatedMatch(t *testing.T) {
	// Removing "X" from "aXb" glues "ab" together, which rule 2 then
	// matches sequentially; the single pass must detect the junction and
	// fall back at apply time.
	acts := []Activation{
		{Rule: &Rule{ID: "1", Type: TypeRemove, Default: "X", Scope: "*"}},
		{Rule: &Rule{ID: "2", Type: TypeReplaceAlt, Default: "ab", Alternatives: []string{"Q"}, Scope: "*"}},
	}
	equivCheck(t, acts, "/", "aXb")
	equivCheck(t, acts, "/", "aXb ab Xab aXb")
}

func TestApplierRuleOrderPriority(t *testing.T) {
	// "ABC" with rule 1 = "BC", rule 2 = "AB": sequentially rule 1 claims
	// "BC" first, leaving "A" unmatched for rule 2.
	acts := []Activation{
		{Rule: &Rule{ID: "1", Type: TypeReplaceAlt, Default: "BC", Alternatives: []string{"x"}, Scope: "*"}},
		{Rule: &Rule{ID: "2", Type: TypeReplaceAlt, Default: "AB", Alternatives: []string{"y"}, Scope: "*"}},
	}
	equivCheck(t, acts, "/", "ABC")
	equivCheck(t, acts, "/", "ABAB ABC BCBC")
}

func TestApplierAdjacentReplacements(t *testing.T) {
	// Three rules landing adjacent replacements: output-scanning cannot
	// prove equivalence here; the proximity guard must fall back.
	acts := []Activation{
		{Rule: &Rule{ID: "1", Type: TypeRemove, Default: "X", Scope: "*"}},
		{Rule: &Rule{ID: "2", Type: TypeReplaceAlt, Default: "ab", Alternatives: []string{"Q"}, Scope: "*"}},
		{Rule: &Rule{ID: "3", Type: TypeReplaceAlt, Default: "b", Alternatives: []string{"R"}, Scope: "*"}},
	}
	equivCheck(t, acts, "/", "aXb")
}

func TestApplierOverlappingSameRule(t *testing.T) {
	acts := []Activation{
		{Rule: &Rule{ID: "1", Type: TypeReplaceAlt, Default: "aa", Alternatives: []string{"b"}, Scope: "*"}},
	}
	equivCheck(t, acts, "/", "aaa")
	equivCheck(t, acts, "/", "aaaa")
	equivCheck(t, acts, "/", "aaaaa a aa")
}

func TestApplierManyRulesMixedBytes(t *testing.T) {
	// Rules with distinct first bytes exercise the general (non-oneByte)
	// scan path.
	acts := []Activation{
		{Rule: &Rule{ID: "1", Type: TypeReplaceAlt, Default: "alpha", Alternatives: []string{"ALPHA"}, Scope: "*"}},
		{Rule: &Rule{ID: "2", Type: TypeRemove, Default: "beta-block", Scope: "*"}},
		{Rule: &Rule{ID: "3", Type: TypeReplaceAlt, Default: "gamma", Alternatives: []string{"GG"}, Scope: "*"}},
	}
	a := NewApplier(acts, "/")
	if !a.Fast() {
		t.Fatal("expected fast path")
	}
	if a.oneByte {
		t.Fatal("expected general scan (distinct first bytes)")
	}
	equivCheck(t, acts, "/", "some alpha, one beta-block, then gamma gamma alpha")
	equivCheck(t, acts, "/", "nothing here")
}

func TestApplierCandidateOverflowFallsBack(t *testing.T) {
	acts := []Activation{
		{Rule: &Rule{ID: "1", Type: TypeReplaceAlt, Default: "a", Alternatives: []string{"b"}, Scope: "*"}},
	}
	page := strings.Repeat("a", maxCandidates+10)
	equivCheck(t, acts, "/", page)
}

func TestApplierConcurrentUse(t *testing.T) {
	acts := []Activation{
		{Rule: &Rule{ID: "jq", Type: TypeReplaceSame, Default: `<script src="http://s1.com/jquery.js">`,
			Alternatives: []string{`<script src="http://s2.net/jquery.js">`}, Scope: "*"}},
		{Rule: &Rule{ID: "px", Type: TypeRemove, Default: `<img src="http://tracker.example/pixel.gif">`, Scope: "*"}},
	}
	a := NewApplier(acts, "/")
	want, _ := Apply(applyPage, "/", acts)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				got, _ := a.Apply(applyPage)
				if got != want {
					t.Error("concurrent Apply diverged")
					return
				}
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}

// FuzzApplyEquivalence asserts the compiled single-pass applier is
// byte-identical — output and Applied records — to the sequential reference
// Apply for arbitrary pages and rule sets. The corpus seeds the known-hard
// shapes: cascades, junction-created matches, rule-order priority, and
// adjacent replacements.
func FuzzApplyEquivalence(f *testing.F) {
	f.Add("aXb", "X", "", "ab", "Q", "b", "R", uint8(0))
	f.Add("A", "A", "B", "B", "C", "", "", uint8(0))
	f.Add("ABC", "BC", "x", "AB", "y", "", "", uint8(0))
	f.Add("aaaa", "aa", "b", "", "", "", "", uint8(0))
	f.Add(applyPage, `<img src="http://tracker.example/pixel.gif">`, "",
		`<script src="http://s1.com/jquery.js">`, `<script src="http://s2.net/jquery.js">`, "", "", uint8(1))
	f.Add("aXb ab", "X", "", "ab", "", "ba", "Z", uint8(7))
	f.Add("xyxyxy", "xy", "yx", "yx", "xy", "x", "", uint8(3))
	f.Fuzz(func(t *testing.T, page, p1, r1, p2, r2, p3, r3 string, bits uint8) {
		mkRule := func(id, pat, rep string, typeBit, scopeBit bool) *Rule {
			if pat == "" {
				return nil
			}
			typ := TypeReplaceAlt
			if typeBit {
				typ = TypeRemove
				rep = ""
			}
			scope := "*"
			if scopeBit {
				scope = "/checkout/*"
			}
			var alts []string
			if rep != "" {
				alts = []string{rep}
			}
			return &Rule{ID: id, Type: typ, Default: pat, Alternatives: alts, Scope: scope}
		}
		var acts []Activation
		if r := mkRule("r1", p1, r1, bits&1 != 0, bits&8 != 0); r != nil {
			acts = append(acts, Activation{Rule: r})
		}
		if r := mkRule("r2", p2, r2, bits&2 != 0, bits&16 != 0); r != nil {
			acts = append(acts, Activation{Rule: r, AltIndex: int(bits >> 6)})
		}
		if r := mkRule("r3", p3, r3, bits&4 != 0, bits&32 != 0); r != nil {
			acts = append(acts, Activation{Rule: r})
		}
		path := "/index.html"
		if bits&64 != 0 {
			path = "/checkout/cart"
		}
		wantOut, wantApplied := Apply(page, path, acts)
		a := NewApplier(acts, path)
		gotOut, gotApplied := a.Apply(page)
		if gotOut != wantOut {
			t.Fatalf("output diverges (fast=%v):\npage %q\n got %q\nwant %q", a.Fast(), page, gotOut, wantOut)
		}
		if !reflect.DeepEqual(gotApplied, wantApplied) {
			t.Fatalf("Applied diverges (fast=%v):\npage %q\n got %+v\nwant %+v", a.Fast(), page, gotApplied, wantApplied)
		}
	})
}
