package rules

import (
	"bufio"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseJSON decodes, normalises and compiles a JSON array of rules — the
// machine-friendly configuration format used by cmd/oakd.
func ParseJSON(data []byte) ([]*Rule, error) {
	var rs []*Rule
	if err := json.Unmarshal(data, &rs); err != nil {
		return nil, fmt.Errorf("rules: decode json: %w", err)
	}
	for _, r := range rs {
		r.normalizeTTL()
		if err := r.Compile(); err != nil {
			return nil, err
		}
	}
	return rs, nil
}

// MarshalJSON encodes a rule set as indented JSON.
func MarshalJSON(rs []*Rule) ([]byte, error) {
	for _, r := range rs {
		r.normalizeTTL()
	}
	return json.MarshalIndent(rs, "", "  ")
}

// ParseDSL parses the operator-facing rule text format, a structured cousin
// of the paper's parenthesized example that survives embedded quotes in HTML
// by using heredoc blocks:
//
//	# jquery from s1 is replaceable by the identical copy on s2
//	rule jquery-cdn {
//	  type 2
//	  default <<<
//	    <script src="http://s1.com/jquery.js">
//	  >>>
//	  alt <<<
//	    <script src="http://s2.net/jquery.js">
//	  >>>
//	  ttl 0          # never expire
//	  scope *        # site-wide
//	  sub "s1.com" -> "s2.net"
//	}
//
// Lines starting with '#' are comments. A rule may have several alt blocks;
// ttl accepts Go duration syntax ("30m") or "0"; scope accepts "*", a
// literal path, a "/prefix/*" wildcard, or "re:<regexp>".
func ParseDSL(text string) ([]*Rule, error) {
	var (
		rs      []*Rule
		cur     *Rule
		lineNo  int
		scanner = bufio.NewScanner(strings.NewReader(text))
	)
	scanner.Buffer(make([]byte, 0, 64*1024), 1024*1024)

	readHeredoc := func() (string, error) {
		var lines []string
		for scanner.Scan() {
			lineNo++
			line := scanner.Text()
			if strings.TrimSpace(line) == ">>>" {
				return dedent(lines), nil
			}
			lines = append(lines, line)
		}
		return "", fmt.Errorf("rules: line %d: unterminated heredoc", lineNo)
	}

	for scanner.Scan() {
		lineNo++
		line := stripComment(scanner.Text())
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch {
		case fields[0] == "rule":
			if cur != nil {
				return nil, fmt.Errorf("rules: line %d: nested rule", lineNo)
			}
			if len(fields) < 3 || fields[len(fields)-1] != "{" {
				return nil, fmt.Errorf("rules: line %d: want 'rule <id> {'", lineNo)
			}
			cur = &Rule{ID: fields[1], Scope: "*"}
		case fields[0] == "}":
			if cur == nil {
				return nil, fmt.Errorf("rules: line %d: '}' outside rule", lineNo)
			}
			cur.normalizeTTL()
			if err := cur.Compile(); err != nil {
				return nil, fmt.Errorf("rules: line %d: %w", lineNo, err)
			}
			rs = append(rs, cur)
			cur = nil
		case cur == nil:
			return nil, fmt.Errorf("rules: line %d: %q outside rule block", lineNo, fields[0])
		case fields[0] == "type":
			if len(fields) != 2 {
				return nil, fmt.Errorf("rules: line %d: want 'type <1|2|3>'", lineNo)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("rules: line %d: bad type %q", lineNo, fields[1])
			}
			cur.Type = Type(n)
		case fields[0] == "default":
			body, err := parseBlockOrInline(line, "default", readHeredoc)
			if err != nil {
				return nil, fmt.Errorf("rules: line %d: %w", lineNo, err)
			}
			cur.Default = body
		case fields[0] == "alt":
			body, err := parseBlockOrInline(line, "alt", readHeredoc)
			if err != nil {
				return nil, fmt.Errorf("rules: line %d: %w", lineNo, err)
			}
			cur.Alternatives = append(cur.Alternatives, body)
		case fields[0] == "ttl":
			if len(fields) != 2 {
				return nil, fmt.Errorf("rules: line %d: want 'ttl <duration|0>'", lineNo)
			}
			if fields[1] == "0" {
				cur.TTL = 0
				break
			}
			d, err := time.ParseDuration(fields[1])
			if err != nil {
				return nil, fmt.Errorf("rules: line %d: bad ttl %q: %v", lineNo, fields[1], err)
			}
			cur.TTL = d
		case fields[0] == "scope":
			if len(fields) != 2 {
				return nil, fmt.Errorf("rules: line %d: want 'scope <pattern>'", lineNo)
			}
			cur.Scope = fields[1]
		case fields[0] == "sub":
			find, replace, err := parseSub(line)
			if err != nil {
				return nil, fmt.Errorf("rules: line %d: %w", lineNo, err)
			}
			cur.SubRules = append(cur.SubRules, SubRule{Find: find, Replace: replace})
		default:
			return nil, fmt.Errorf("rules: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("rules: scan: %w", err)
	}
	if cur != nil {
		return nil, fmt.Errorf("rules: unterminated rule %q", cur.ID)
	}
	return rs, nil
}

// dedent joins heredoc lines after removing their common leading whitespace,
// so operators can indent rule bodies without the indentation becoming part
// of the match text.
func dedent(lines []string) string {
	common := -1
	for _, line := range lines {
		if strings.TrimSpace(line) == "" {
			continue
		}
		indent := len(line) - len(strings.TrimLeft(line, " \t"))
		if common < 0 || indent < common {
			common = indent
		}
	}
	if common < 0 {
		common = 0
	}
	out := make([]string, len(lines))
	for i, line := range lines {
		if len(line) >= common {
			out[i] = line[common:]
		} else {
			out[i] = strings.TrimLeft(line, " \t")
		}
	}
	joined := strings.TrimRight(strings.Join(out, "\n"), "\n")
	if strings.TrimSpace(joined) == "" {
		return ""
	}
	return joined
}

// stripComment removes a trailing '#' comment unless the '#' is inside a
// double-quoted string.
func stripComment(line string) string {
	inQuote := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			inQuote = !inQuote
		case '#':
			if !inQuote {
				return line[:i]
			}
		}
	}
	return line
}

// parseBlockOrInline handles 'default <<<' heredocs and the inline form
// 'default "text"'.
func parseBlockOrInline(line, keyword string, readHeredoc func() (string, error)) (string, error) {
	rest := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(line), keyword))
	if rest == "<<<" {
		return readHeredoc()
	}
	s, err := strconv.Unquote(rest)
	if err != nil {
		return "", fmt.Errorf("%s: want '<<<' heredoc or quoted string, got %q", keyword, rest)
	}
	return s, nil
}

// parseSub parses: sub "find" -> "replace"
func parseSub(line string) (find, replace string, err error) {
	rest := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(line), "sub"))
	parts := strings.SplitN(rest, "->", 2)
	if len(parts) != 2 {
		return "", "", fmt.Errorf("sub: want 'sub \"find\" -> \"replace\"'")
	}
	find, err = strconv.Unquote(strings.TrimSpace(parts[0]))
	if err != nil {
		return "", "", fmt.Errorf("sub: bad find string: %v", err)
	}
	replace, err = strconv.Unquote(strings.TrimSpace(parts[1]))
	if err != nil {
		return "", "", fmt.Errorf("sub: bad replace string: %v", err)
	}
	if find == "" {
		return "", "", fmt.Errorf("sub: empty find string")
	}
	return find, replace, nil
}
