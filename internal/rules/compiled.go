package rules

import (
	"sort"
	"strings"
	"sync"
)

// Compiled rule application: an activation set is compiled once per
// (activation epoch, page path) into an Applier that rewrites pages in a
// single scan, instead of the reference Apply's one Count + one ReplaceAll
// pass per rule. The applier collects every occurrence of every rule's
// default text in one multi-pattern sweep (first-byte dispatch), resolves
// the occurrences in rule order with the same non-overlapping discipline
// strings.ReplaceAll uses, and assembles the output through a sync.Pool'd
// buffer.
//
// Equivalence: Applier.Apply is byte-identical to the sequential reference
// Apply for every page (FuzzApplyEquivalence asserts this). Sequential
// application can cascade — a later rule may match text an earlier rule's
// replacement introduced, or text glued together across a removal — and a
// single pass over the original page cannot reproduce cascades. The applier
// therefore guards the fast path conservatively:
//
//   - at compile time it rejects activation sets with sub-rules, unknown
//     rule types, empty defaults, or any rule's default occurring inside
//     another rule's replacement text;
//   - per page it rejects resolutions where a later rule's default could
//     match across the boundary of an earlier replacement (junction
//     windows), or where two replacements land close enough to interact.
//
// Any rejection falls back to the sequential reference implementation, so
// the fast path only ever serves rewrites it can prove identical. Real rule
// sets — long, distinct HTML blocks replaced by unrelated markup — compile
// to the fast path; the guards exist for the adversarial cases.

// maxCandidates bounds how many pattern occurrences the single-pass scan
// tracks before handing the page to the sequential reference instead; it
// keeps resolution near-linear on pathological pages (a one-byte default
// matching at every position).
const maxCandidates = 4096

// compiledRule is one in-scope activation, pre-resolved for application.
type compiledRule struct {
	pat string // the rule's default text
	rep string // replacement for the selected alternative ("" for Type 1)
	// applied is the precomputed record template: RuleID and CacheHints
	// never change per page, only Replacements does. The CacheHints slice
	// is shared across results — callers must treat Applied records as
	// read-only (they already do: CacheHintValue only reads).
	applied Applied
}

// Applier is an activation set compiled for one page path. It is immutable
// after NewApplier and safe for concurrent use by any number of goroutines.
type Applier struct {
	rules []compiledRule
	acts  []Activation // retained for the sequential fallback
	path  string

	// fallback marks activation sets the single pass cannot provably
	// reproduce (sub-rules, interfering patterns); Apply then delegates to
	// the sequential reference unconditionally.
	fallback bool

	// Scan dispatch: buckets[b] lists the rules whose default starts with
	// byte b, in activation order. oneByte enables the IndexByte-driven
	// scan when every default shares its first byte (the common case for
	// HTML rules, which all start with '<').
	buckets  [256][]int32
	oneByte  bool
	theByte  byte
	maxLen   int
	minLen   int
	hasRules bool
}

// NewApplier compiles the activations that are in scope for path. The
// returned applier's Apply(page) is byte-identical to
// Apply(page, path, acts) for every page.
func NewApplier(acts []Activation, path string) *Applier {
	a := &Applier{
		acts: append([]Activation(nil), acts...),
		path: path,
	}
	for _, act := range acts {
		r := act.Rule
		if r == nil || !r.InScope(path) {
			continue
		}
		if len(r.SubRules) > 0 || !r.Type.Valid() || r.Default == "" {
			a.fallback = true
			return a
		}
		rep := ""
		if r.Type != TypeRemove {
			rep = r.Alternative(act.AltIndex)
		}
		cr := compiledRule{pat: r.Default, rep: rep, applied: Applied{RuleID: r.ID}}
		if r.Type == TypeReplaceSame {
			cr.applied.CacheHints = cacheHints(r.Default, rep)
		}
		a.rules = append(a.rules, cr)
	}
	if len(a.rules) == 0 {
		return a
	}
	// Compile-time interference: a rule's default occurring inside another
	// rule's replacement means sequential application could replace text a
	// replacement introduced — a cascade one pass cannot reproduce.
	for i := range a.rules {
		for j := range a.rules {
			if i != j && strings.Contains(a.rules[i].rep, a.rules[j].pat) {
				a.fallback = true
				return a
			}
		}
	}
	a.hasRules = true
	a.minLen = len(a.rules[0].pat)
	for i := range a.rules {
		p := a.rules[i].pat
		a.buckets[p[0]] = append(a.buckets[p[0]], int32(i))
		if len(p) > a.maxLen {
			a.maxLen = len(p)
		}
		if len(p) < a.minLen {
			a.minLen = len(p)
		}
	}
	distinct := 0
	for b := 0; b < 256; b++ {
		if len(a.buckets[b]) > 0 {
			distinct++
			a.theByte = byte(b)
		}
	}
	a.oneByte = distinct == 1
	return a
}

// Fast reports whether the applier compiled to the single-pass path (false
// means every Apply call runs the sequential reference).
func (a *Applier) Fast() bool { return !a.fallback }

// cand is one occurrence of one rule's default in the scanned page.
type cand struct {
	rule int32
	pos  int32
}

// span is one accepted replacement: page[start:end) becomes rules[rule].rep.
type span struct {
	start, end int32
	rule       int32
}

var candPool = sync.Pool{New: func() any {
	s := make([]cand, 0, 128)
	return &s
}}

var outBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

// Apply rewrites page exactly as Apply(page, path, acts) would, in a single
// scan when the compiled fast path holds. The unmodified page is returned
// as-is (same string, no allocation) when nothing matches.
func (a *Applier) Apply(page string) (string, []Applied) {
	if a.fallback {
		return Apply(page, a.path, a.acts)
	}
	if !a.hasRules || len(page) < a.minLen {
		return page, nil
	}
	cands, overflow := a.scan(page)
	if cands == nil {
		return page, nil
	}
	defer func() {
		*cands = (*cands)[:0]
		candPool.Put(cands)
	}()
	if overflow {
		return Apply(page, a.path, a.acts)
	}
	accepted, counts := a.resolve(page, *cands)
	if !a.safe(page, accepted) {
		return Apply(page, a.path, a.acts)
	}
	return a.assemble(page, accepted, counts)
}

// scan collects every occurrence of every rule's default in one pass.
// A nil result means the page matches nothing (and nothing was allocated).
func (a *Applier) scan(page string) (*[]cand, bool) {
	var cands *[]cand
	add := func(rule int32, pos int) bool {
		if cands == nil {
			cands = candPool.Get().(*[]cand)
		}
		*cands = append(*cands, cand{rule: rule, pos: int32(pos)})
		return len(*cands) <= maxCandidates
	}
	if a.oneByte {
		bucket := a.buckets[a.theByte]
		for i := 0; ; {
			j := strings.IndexByte(page[i:], a.theByte)
			if j < 0 {
				break
			}
			pos := i + j
			for _, ri := range bucket {
				p := a.rules[ri].pat
				if pos+len(p) <= len(page) && page[pos:pos+len(p)] == p {
					if !add(ri, pos) {
						return cands, true
					}
				}
			}
			i = pos + 1
		}
		return cands, false
	}
	for pos := 0; pos < len(page); pos++ {
		bucket := a.buckets[page[pos]]
		if len(bucket) == 0 {
			continue
		}
		for _, ri := range bucket {
			p := a.rules[ri].pat
			if pos+len(p) <= len(page) && page[pos:pos+len(p)] == p {
				if !add(ri, pos) {
					return cands, true
				}
			}
		}
	}
	return cands, false
}

// resolve selects which occurrences actually replace, reproducing the
// sequential discipline: rules claim matches in activation order, each rule
// left to right, and an occurrence overlapping an already-claimed region is
// skipped — exactly what per-rule strings.ReplaceAll passes would do on the
// regions of the page that survive to that rule's turn.
func (a *Applier) resolve(page string, cands []cand) ([]span, []int) {
	accepted := make([]span, 0, len(cands))
	counts := make([]int, len(a.rules))
	for ri := int32(0); ri < int32(len(a.rules)); ri++ {
		patLen := int32(len(a.rules[ri].pat))
		for _, c := range cands {
			if c.rule != ri {
				continue
			}
			s, e := c.pos, c.pos+patLen
			// First accepted span ending after s; overlap iff it starts
			// before e.
			k := sort.Search(len(accepted), func(i int) bool { return accepted[i].end > s })
			if k < len(accepted) && accepted[k].start < e {
				continue
			}
			accepted = append(accepted, span{})
			copy(accepted[k+1:], accepted[k:])
			accepted[k] = span{start: s, end: e, rule: ri}
			counts[ri]++
		}
	}
	return accepted, counts
}

// safe verifies the accepted resolution is reproducible in one pass:
// no later rule's default may match across the edges of an earlier
// replacement (a junction the sequential pass would rescan), and no two
// replacements may land close enough for one's junction window to reach
// into the other's rewritten text.
func (a *Applier) safe(page string, accepted []span) bool {
	if len(accepted) == 0 {
		return true
	}
	ctx := a.maxLen - 1
	for i := 1; i < len(accepted); i++ {
		if int(accepted[i].start-accepted[i-1].end) < ctx {
			return false
		}
	}
	if ctx == 0 {
		// All defaults are single bytes: no occurrence can straddle a
		// junction.
		return true
	}
	buf := outBufPool.Get().(*[]byte)
	defer func() {
		*buf = (*buf)[:0]
		outBufPool.Put(buf)
	}()
	for _, sp := range accepted {
		ls := int(sp.start) - ctx
		if ls < 0 {
			ls = 0
		}
		re := int(sp.end) + ctx
		if re > len(page) {
			re = len(page)
		}
		w := (*buf)[:0]
		w = append(w, page[ls:sp.start]...)
		lLen := len(w)
		w = append(w, a.rules[sp.rule].rep...)
		rStart := len(w)
		w = append(w, page[sp.end:re]...)
		if !a.windowClean(w, lLen, rStart, sp.rule) {
			return false
		}
		*buf = w[:0]
	}
	return true
}

// windowClean scans one junction window (left original context +
// replacement + right original context) for occurrences of defaults of
// rules later in activation order than owner. Occurrences entirely inside
// the untouched left or right context are original-page candidates the
// resolution already judged; occurrences of the owner itself (or earlier
// rules) are never rescanned by the sequential pass. Anything else is a
// cascade the single pass cannot reproduce.
func (a *Applier) windowClean(w []byte, lLen, rStart int, owner int32) bool {
	for pos := 0; pos < len(w); pos++ {
		bucket := a.buckets[w[pos]]
		if len(bucket) == 0 {
			continue
		}
		for _, ri := range bucket {
			if ri <= owner {
				continue
			}
			p := a.rules[ri].pat
			end := pos + len(p)
			if end > len(w) || string(w[pos:end]) != p {
				continue
			}
			if end <= lLen || pos >= rStart {
				continue // entirely in untouched original context
			}
			return false
		}
	}
	return true
}

// assemble builds the rewritten page from the accepted spans through a
// pooled buffer, and the Applied records in activation order with the same
// zero-record semantics as the sequential Apply.
func (a *Applier) assemble(page string, accepted []span, counts []int) (string, []Applied) {
	if len(accepted) == 0 {
		// Candidates existed but none survived resolution; with at least
		// one candidate the earliest rule owning one always claims it, so
		// this cannot happen — kept as a safety net.
		return page, nil
	}
	size := len(page)
	for _, sp := range accepted {
		size += len(a.rules[sp.rule].rep) - int(sp.end-sp.start)
	}
	buf := outBufPool.Get().(*[]byte)
	out := (*buf)[:0]
	if cap(out) < size {
		out = make([]byte, 0, size)
	}
	pos := 0
	for _, sp := range accepted {
		out = append(out, page[pos:sp.start]...)
		failpoint(a.rules[sp.rule].applied.RuleID)
		out = append(out, a.rules[sp.rule].rep...)
		pos = int(sp.end)
	}
	out = append(out, page[pos:]...)
	result := string(out)
	*buf = out[:0]
	outBufPool.Put(buf)

	applied := make([]Applied, 0, len(a.rules))
	for i := range a.rules {
		rec := a.rules[i].applied
		rec.Replacements = counts[i]
		if counts[i] == 0 {
			rec = Applied{RuleID: a.rules[i].applied.RuleID}
		}
		applied = append(applied, rec)
	}
	return result, applied
}
