package rules

import (
	"strings"
	"testing"
)

// codes extracts the set of warning codes from a lint run.
func codes(ws []LintWarning) map[string]int {
	out := make(map[string]int)
	for _, w := range ws {
		out[w.Code]++
	}
	return out
}

func TestLintCleanRuleSet(t *testing.T) {
	rs := []*Rule{
		{ID: "a", Type: TypeReplaceSame,
			Default:      `<img src="http://one.example/x.png">`,
			Alternatives: []string{`<img src="http://alt.example/x.png">`}, Scope: "*"},
		{ID: "b", Type: TypeRemove,
			Default: `<script src="http://two.example/t.js"></script>`, Scope: "*"},
	}
	if ws := Lint(rs); len(ws) != 0 {
		t.Errorf("clean set produced warnings: %v", ws)
	}
}

func TestLintAltKeepsDefaultHost(t *testing.T) {
	rs := []*Rule{{
		ID: "r", Type: TypeReplaceSame,
		Default:      `<img src="http://bad.example/x.png">`,
		Alternatives: []string{`<img src="http://bad.example/y.png">`},
		Scope:        "*",
	}}
	ws := Lint(rs)
	if codes(ws)["alt-keeps-default-host"] != 1 {
		t.Errorf("warnings = %v, want alt-keeps-default-host", ws)
	}
}

func TestLintAltEqualsDefault(t *testing.T) {
	rs := []*Rule{{
		ID: "r", Type: TypeReplaceSame,
		Default:      `<img src="http://h.example/x.png">`,
		Alternatives: []string{`<img src="http://h.example/x.png">`},
		Scope:        "*",
	}}
	c := codes(Lint(rs))
	if c["alt-equals-default"] != 1 {
		t.Errorf("codes = %v, want alt-equals-default", c)
	}
}

func TestLintDuplicateDefault(t *testing.T) {
	frag := `<img src="http://h.example/x.png">`
	rs := []*Rule{
		{ID: "first", Type: TypeRemove, Default: frag, Scope: "*"},
		{ID: "second", Type: TypeRemove, Default: frag, Scope: "*"},
	}
	ws := Lint(rs)
	c := codes(ws)
	if c["duplicate-default"] != 1 {
		t.Fatalf("codes = %v", c)
	}
	for _, w := range ws {
		if w.Code == "duplicate-default" {
			if w.RuleID != "second" || !strings.Contains(w.Message, "first") {
				t.Errorf("warning = %+v, want second referencing first", w)
			}
		}
	}
}

func TestLintNoMatchableHost(t *testing.T) {
	rs := []*Rule{{ID: "r", Type: TypeRemove, Default: "<div>static banner</div>", Scope: "*"}}
	if codes(Lint(rs))["no-matchable-host"] != 1 {
		t.Errorf("warnings = %v", Lint(rs))
	}
}

func TestLintSubRuleFindings(t *testing.T) {
	rs := []*Rule{{
		ID: "r", Type: TypeReplaceSame,
		Default:      "BLOCK",
		Alternatives: []string{"OTHER http://x.example/a"},
		SubRules: []SubRule{
			{Find: "flag", Replace: "prefix BLOCK suffix"},
			{Find: "same", Replace: "same"},
		},
		Scope: "*",
	}}
	c := codes(Lint(rs))
	if c["sub-reintroduces-default"] != 1 || c["sub-noop"] != 1 {
		t.Errorf("codes = %v", c)
	}
}

func TestLintDuplicateAlternative(t *testing.T) {
	rs := []*Rule{{
		ID: "r", Type: TypeReplaceSame,
		Default:      `<img src="http://h.example/x.png">`,
		Alternatives: []string{"A http://a.example/1", "B http://b.example/2", "A http://a.example/1"},
		Scope:        "*",
	}}
	if codes(Lint(rs))["duplicate-alternative"] != 1 {
		t.Errorf("warnings = %v", Lint(rs))
	}
}

func TestLintOverlappingDefaults(t *testing.T) {
	rs := []*Rule{
		{ID: "outer", Type: TypeRemove,
			Default: `<div><img src="http://h.example/x.png"></div>`, Scope: "*"},
		{ID: "inner", Type: TypeRemove,
			Default: `<img src="http://h.example/x.png">`, Scope: "*"},
	}
	ws := Lint(rs)
	if codes(ws)["overlapping-defaults"] != 1 {
		t.Errorf("warnings = %v", ws)
	}
}

func TestLintWarningString(t *testing.T) {
	w := LintWarning{RuleID: "r", Code: "c", Message: "m"}
	if got := w.String(); got != "rule r: [c] m" {
		t.Errorf("String = %q", got)
	}
	setWide := LintWarning{Code: "c", Message: "m"}
	if got := setWide.String(); got != "[c] m" {
		t.Errorf("String = %q", got)
	}
}

func TestLintEmpty(t *testing.T) {
	if ws := Lint(nil); len(ws) != 0 {
		t.Errorf("Lint(nil) = %v", ws)
	}
}

func TestLintNoAlternatives(t *testing.T) {
	// Validate rejects this shape, but rule sets assembled in code reach
	// the engine unvalidated — where the rule (and synthesis) silently
	// skips. Lint must flag both replacement types; remove rules are fine.
	for _, typ := range []Type{TypeReplaceSame, TypeReplaceAlt} {
		rs := []*Rule{{
			ID: "r", Type: typ,
			Default: `<img src="http://h.example/x.png">`,
			Scope:   "*",
		}}
		if c := codes(Lint(rs)); c["no-alternatives"] != 1 {
			t.Errorf("type %d codes = %v, want no-alternatives", typ, c)
		}
	}
	rm := []*Rule{{
		ID: "r", Type: TypeRemove,
		Default: `<img src="http://h.example/x.png">`,
		Scope:   "*",
	}}
	if c := codes(Lint(rm)); c["no-alternatives"] != 0 {
		t.Errorf("remove rule flagged no-alternatives: %v", c)
	}
}

func TestLintAltNoHost(t *testing.T) {
	rs := []*Rule{{
		ID: "r", Type: TypeReplaceSame,
		Default:      `<img src="http://h.example/x.png">`,
		Alternatives: []string{`<span>placeholder</span>`},
		Scope:        "*",
	}}
	if c := codes(Lint(rs)); c["alt-no-host"] != 1 {
		t.Errorf("codes = %v, want alt-no-host", c)
	}
	// An inline removal-style empty alternative is deliberate, not a
	// mistake: no warning.
	empty := []*Rule{{
		ID: "r", Type: TypeReplaceSame,
		Default:      `<img src="http://h.example/x.png">`,
		Alternatives: []string{""},
		Scope:        "*",
	}}
	if c := codes(Lint(empty)); c["alt-no-host"] != 0 {
		t.Errorf("empty alternative flagged alt-no-host: %v", c)
	}
}
