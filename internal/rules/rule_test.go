package rules

import (
	"errors"
	"reflect"
	"testing"
	"time"
)

func validType2() *Rule {
	return &Rule{
		ID:           "jquery",
		Type:         TypeReplaceSame,
		Default:      `<script src="http://s1.com/jquery.js">`,
		Alternatives: []string{`<script src="http://s2.net/jquery.js">`},
		Scope:        "*",
	}
}

func TestTypeString(t *testing.T) {
	tests := []struct {
		typ  Type
		want string
	}{
		{TypeRemove, "type1-remove"},
		{TypeReplaceSame, "type2-replace-same"},
		{TypeReplaceAlt, "type3-replace-alt"},
		{Type(9), "type9-unknown"},
	}
	for _, tt := range tests {
		if got := tt.typ.String(); got != tt.want {
			t.Errorf("Type(%d).String() = %q, want %q", int(tt.typ), got, tt.want)
		}
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Rule)
		wantErr error
	}{
		{"ok", func(r *Rule) {}, nil},
		{"no id", func(r *Rule) { r.ID = "" }, ErrNoID},
		{"bad type", func(r *Rule) { r.Type = 7 }, ErrBadType},
		{"no default", func(r *Rule) { r.Default = "" }, ErrNoDefault},
		{"type2 no alt", func(r *Rule) { r.Alternatives = nil }, ErrNoAlternative},
		{"negative ttl", func(r *Rule) { r.TTL = -time.Second }, ErrNegativeTTL},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := validType2()
			tt.mutate(r)
			err := r.Validate()
			if tt.wantErr == nil {
				if err != nil {
					t.Errorf("Validate() = %v, want nil", err)
				}
				return
			}
			if !errors.Is(err, tt.wantErr) {
				t.Errorf("Validate() = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestValidateType1NoAlts(t *testing.T) {
	r := &Rule{ID: "x", Type: TypeRemove, Default: "<div>ad</div>"}
	if err := r.Validate(); err != nil {
		t.Errorf("type1 Validate() = %v, want nil", err)
	}
	r.Alternatives = []string{"oops"}
	if err := r.Validate(); !errors.Is(err, ErrUnexpectedAlt) {
		t.Errorf("type1 with alts Validate() = %v, want ErrUnexpectedAlt", err)
	}
}

func TestCompileBadScope(t *testing.T) {
	r := validType2()
	r.Scope = "re:["
	if err := r.Compile(); !errors.Is(err, ErrBadScopePattern) {
		t.Errorf("Compile(bad regexp) = %v, want ErrBadScopePattern", err)
	}
}

func TestInScope(t *testing.T) {
	tests := []struct {
		scope string
		path  string
		want  bool
	}{
		{"*", "/any/page.html", true},
		{"", "/any/page.html", true},
		{"/index.html", "/index.html", true},
		{"/index.html", "/other.html", false},
		{"/blog/*", "/blog/post1.html", true},
		{"/blog/*", "/about.html", false},
		{"re:^/p[0-9]+$", "/p42", true},
		{"re:^/p[0-9]+$", "/px", false},
	}
	for _, tt := range tests {
		r := validType2()
		r.Scope = tt.scope
		if err := r.Compile(); err != nil {
			t.Fatalf("Compile(scope=%q): %v", tt.scope, err)
		}
		if got := r.InScope(tt.path); got != tt.want {
			t.Errorf("InScope(%q, %q) = %v, want %v", tt.scope, tt.path, got, tt.want)
		}
	}
}

func TestInScopeUncompiledRegexp(t *testing.T) {
	r := validType2()
	r.Scope = "re:^/a"
	// Not compiled: InScope compiles lazily.
	if !r.InScope("/abc") {
		t.Error("lazy regexp scope failed to match")
	}
	r2 := validType2()
	r2.Scope = "re:["
	if r2.InScope("/abc") {
		t.Error("invalid lazy regexp scope must not match")
	}
}

func TestAlternativeProgression(t *testing.T) {
	r := validType2()
	r.Alternatives = []string{"a", "b", "c"}
	tests := []struct {
		i    int
		want string
	}{
		{-1, "a"},
		{0, "a"},
		{1, "b"},
		{2, "c"},
		{3, "c"}, // past the end: stay on last
		{99, "c"},
	}
	for _, tt := range tests {
		if got := r.Alternative(tt.i); got != tt.want {
			t.Errorf("Alternative(%d) = %q, want %q", tt.i, got, tt.want)
		}
	}
}

func TestAlternativeType1Empty(t *testing.T) {
	r := &Rule{ID: "x", Type: TypeRemove, Default: "d"}
	if got := r.Alternative(0); got != "" {
		t.Errorf("type1 Alternative(0) = %q, want empty", got)
	}
}

func TestDefaultHosts(t *testing.T) {
	r := &Rule{
		ID:   "mixed",
		Type: TypeRemove,
		Default: `<script src="http://tagged.example/x.js"></script>
<script>var u = "freetext.example"; go(u);</script>`,
	}
	hosts := r.DefaultHosts()
	want := []string{"tagged.example", "freetext.example"}
	if !reflect.DeepEqual(hosts, want) {
		t.Errorf("DefaultHosts = %v, want %v", hosts, want)
	}
}

func TestScriptSrcs(t *testing.T) {
	r := validType2()
	got := r.ScriptSrcs()
	if !reflect.DeepEqual(got, []string{"http://s1.com/jquery.js"}) {
		t.Errorf("ScriptSrcs = %v", got)
	}
}

func TestExpires(t *testing.T) {
	now := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	r := validType2()
	if got := r.Expires(now); !got.IsZero() {
		t.Errorf("TTL 0 Expires = %v, want zero time (never)", got)
	}
	r.TTL = time.Hour
	if got := r.Expires(now); !got.Equal(now.Add(time.Hour)) {
		t.Errorf("Expires = %v, want now+1h", got)
	}
}
