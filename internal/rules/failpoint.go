package rules

import "sync/atomic"

// applyFailpoint, when set, is consulted at each rule's replacement point in
// both the sequential Apply and the compiled Applier; returning true makes
// the replacement panic. It exists so tests (and chaos suites) can inject a
// deterministic rewrite panic for a chosen rule and prove the serve path's
// panic isolation end-to-end — there is no production code path that sets it.
var applyFailpoint atomic.Pointer[func(ruleID string) bool]

// SetApplyFailpoint installs fn as the rewrite failpoint (nil uninstalls).
// While installed, applying any rule for which fn returns true panics at the
// replacement point. Test-only; concurrency-safe.
func SetApplyFailpoint(fn func(ruleID string) bool) {
	if fn == nil {
		applyFailpoint.Store(nil)
		return
	}
	applyFailpoint.Store(&fn)
}

// failpoint panics if the installed failpoint claims this rule. The nil
// fast path is a single atomic load, so the hook costs nothing when unused.
func failpoint(ruleID string) {
	fp := applyFailpoint.Load()
	if fp == nil {
		return
	}
	if (*fp)(ruleID) {
		panic("rules: injected failpoint panic applying rule " + ruleID)
	}
}
