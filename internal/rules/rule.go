// Package rules implements Oak's operator-specified rule mechanism
// (Section 4.1 of the paper).
//
// A rule abstractly describes a replaceable portion of a page — a block of
// text representing a default object — together with what to do when the
// servers that block leads to under-perform: remove it (Type 1), replace it
// with the same object at an alternative source (Type 2), or replace it with
// a non-identical alternative object (Type 3). Rules carry a time-to-live, a
// scope restricting which pages they apply to, optional sub-rules that fire
// only when the parent activates, and (Section 4.2.4) an ordered list of
// alternatives the engine progresses through on repeated activations.
package rules

import (
	"errors"
	"fmt"
	"regexp"
	"strings"
	"time"

	"oak/internal/htmlscan"
)

// Type is the rule type from Section 4.1.
type Type int

const (
	// TypeRemove (paper: Type 1) removes the default object text from the
	// page. No alternative is needed.
	TypeRemove Type = 1
	// TypeReplaceSame (paper: Type 2) replaces the default object text with
	// the same object served from an alternative source. Because the object
	// is identical, Oak emits a cache-hint header so browsers can reuse a
	// cached copy fetched under the old URL (Section 4.3).
	TypeReplaceSame Type = 2
	// TypeReplaceAlt (paper: Type 3) replaces the default object with a
	// non-identical alternative object.
	TypeReplaceAlt Type = 3
)

// String returns the paper's name for the type.
func (t Type) String() string {
	switch t {
	case TypeRemove:
		return "type1-remove"
	case TypeReplaceSame:
		return "type2-replace-same"
	case TypeReplaceAlt:
		return "type3-replace-alt"
	default:
		return fmt.Sprintf("type%d-unknown", int(t))
	}
}

// Valid reports whether t is one of the three paper-defined types.
func (t Type) Valid() bool {
	return t == TypeRemove || t == TypeReplaceSame || t == TypeReplaceAlt
}

// SubRule is a simple unconditional replacement applied only when its parent
// rule is active. Sub-rules let operators express larger coordinated edits
// without full-fledged trigger machinery (Section 4.1).
type SubRule struct {
	// Find is the exact text to replace.
	Find string `json:"find"`
	// Replace is its substitution (may be empty, meaning removal).
	Replace string `json:"replace"`
}

// Rule is one operator-specified rule.
type Rule struct {
	// ID identifies the rule in logs, policies and the activation ledger.
	ID string `json:"id"`
	// Type selects remove/replace-same/replace-alt semantics.
	Type Type `json:"type"`
	// Default is the block of text representing the default object — the
	// text Oak looks for in outgoing pages and scans for server references
	// when deciding activation.
	Default string `json:"default"`
	// Alternatives are the replacement texts. Type 1 rules need none; for
	// Types 2/3 the engine selects among them per policy (linearly by
	// default). Keeping a list implements Section 4.2.4's "specification of
	// multiple alternatives in each rule".
	Alternatives []string `json:"alternatives,omitempty"`
	// TTL is how long an activation lasts before automatic deactivation.
	// Zero means never expire, matching the paper's example rule.
	TTL time.Duration `json:"-"`
	// TTLMillis carries TTL across JSON (json can't encode Duration).
	TTLMillis int64 `json:"ttlMillis"`
	// Scope is a path pattern selecting the pages the rule applies to:
	// "*" (or "") means site-wide; a leading-"/" literal matches one path;
	// "re:<expr>" is a regular expression over the path.
	Scope string `json:"scope"`
	// SubRules are applied (in order) only when this rule is active.
	SubRules []SubRule `json:"subRules,omitempty"`

	scopeRe *regexp.Regexp // compiled lazily by Compile for "re:" scopes

	// srcHosts / altSrcHosts cache the src/href hostnames of Default and of
	// each alternative, filled by Compile. Reconciliation consults the
	// alternative hosts on every report that touches an active rule, far
	// too often to re-run the attribute regexp each time.
	srcHosts    []string
	altSrcHosts [][]string
	srcHostsOK  bool
}

// Validation errors.
var (
	ErrNoID            = errors.New("rules: rule has no id")
	ErrBadType         = errors.New("rules: invalid rule type")
	ErrNoDefault       = errors.New("rules: rule has no default object text")
	ErrNoAlternative   = errors.New("rules: replacement rule has no alternative")
	ErrUnexpectedAlt   = errors.New("rules: removal rule must not have alternatives")
	ErrNegativeTTL     = errors.New("rules: negative ttl")
	ErrBadScopePattern = errors.New("rules: invalid scope pattern")
)

// Validate checks the rule's structural invariants.
func (r *Rule) Validate() error {
	if r.ID == "" {
		return ErrNoID
	}
	if !r.Type.Valid() {
		return fmt.Errorf("%w: %d (rule %s)", ErrBadType, int(r.Type), r.ID)
	}
	if r.Default == "" {
		return fmt.Errorf("%w (rule %s)", ErrNoDefault, r.ID)
	}
	switch r.Type {
	case TypeRemove:
		if len(r.Alternatives) > 0 {
			return fmt.Errorf("%w (rule %s)", ErrUnexpectedAlt, r.ID)
		}
	case TypeReplaceSame, TypeReplaceAlt:
		if len(r.Alternatives) == 0 {
			return fmt.Errorf("%w (rule %s)", ErrNoAlternative, r.ID)
		}
	}
	if r.TTL < 0 {
		return fmt.Errorf("%w (rule %s)", ErrNegativeTTL, r.ID)
	}
	return nil
}

// Compile validates the rule, pre-compiles its scope pattern and caches the
// src/href hosts of the default text and every alternative.
func (r *Rule) Compile() error {
	if err := r.Validate(); err != nil {
		return err
	}
	if expr, ok := strings.CutPrefix(r.Scope, "re:"); ok {
		re, err := regexp.Compile(expr)
		if err != nil {
			return fmt.Errorf("%w: %q: %v (rule %s)", ErrBadScopePattern, expr, err, r.ID)
		}
		r.scopeRe = re
	}
	r.srcHosts = htmlscan.ExtractSrcHosts(r.Default)
	r.altSrcHosts = nil
	for _, alt := range r.Alternatives {
		r.altSrcHosts = append(r.altSrcHosts, htmlscan.ExtractSrcHosts(alt))
	}
	r.srcHostsOK = true
	return nil
}

// SrcHosts returns the hostnames referenced by src/href attributes in the
// rule's default text. Compiled rules answer from cache; uncompiled rules
// scan live.
func (r *Rule) SrcHosts() []string {
	if r.srcHostsOK {
		return r.srcHosts
	}
	return htmlscan.ExtractSrcHosts(r.Default)
}

// AlternativeSrcHosts is SrcHosts for the i-th alternative, with
// Alternative's clamping semantics (past-the-end indexes return the last).
func (r *Rule) AlternativeSrcHosts(i int) []string {
	if !r.srcHostsOK {
		return htmlscan.ExtractSrcHosts(r.Alternative(i))
	}
	if len(r.altSrcHosts) == 0 {
		return nil
	}
	if i < 0 {
		i = 0
	}
	if i >= len(r.altSrcHosts) {
		i = len(r.altSrcHosts) - 1
	}
	return r.altSrcHosts[i]
}

// InScope reports whether the rule applies to the given site-relative page
// path. Scope "" and "*" are site-wide; "re:<expr>" matches the path against
// a regular expression; anything else is a literal path (with a trailing "*"
// allowed as a prefix wildcard, e.g. "/blog/*").
func (r *Rule) InScope(path string) bool {
	switch {
	case r.Scope == "" || r.Scope == "*":
		return true
	case strings.HasPrefix(r.Scope, "re:"):
		if r.scopeRe == nil {
			re, err := regexp.Compile(strings.TrimPrefix(r.Scope, "re:"))
			if err != nil {
				return false
			}
			r.scopeRe = re
		}
		return r.scopeRe.MatchString(path)
	case strings.HasSuffix(r.Scope, "*"):
		return strings.HasPrefix(path, strings.TrimSuffix(r.Scope, "*"))
	default:
		return path == r.Scope
	}
}

// Alternative returns the i-th alternative with linear progression semantics:
// indexes past the end return the last alternative (the engine has run out
// of fresh providers and stays on the final one). It returns "" for Type 1
// rules, whose activation removes the default text.
func (r *Rule) Alternative(i int) string {
	if len(r.Alternatives) == 0 {
		return ""
	}
	if i < 0 {
		i = 0
	}
	if i >= len(r.Alternatives) {
		i = len(r.Alternatives) - 1
	}
	return r.Alternatives[i]
}

// DefaultHosts returns the hostnames referenced by the rule's default object
// text — from src/href attributes and from free-text mentions (the paper's
// direct-inclusion and text-match surfaces).
func (r *Rule) DefaultHosts() []string {
	seen := make(map[string]bool)
	var hosts []string
	for _, h := range htmlscan.ExtractSrcHosts(r.Default) {
		if !seen[h] {
			seen[h] = true
			hosts = append(hosts, h)
		}
	}
	for _, h := range htmlscan.HostsInText(r.Default) {
		if !seen[h] {
			seen[h] = true
			hosts = append(hosts, h)
		}
	}
	return hosts
}

// ScriptSrcs returns the external script URLs referenced by the rule's
// default text; the matcher fetches these during the external-JavaScript
// expansion pass (Section 4.2.2).
func (r *Rule) ScriptSrcs() []string {
	return htmlscan.ScriptSrcs(r.Default)
}

// Expires computes the expiry instant for an activation made at now. The
// zero time means the activation never expires (TTL 0).
func (r *Rule) Expires(now time.Time) time.Time {
	if r.TTL == 0 {
		return time.Time{}
	}
	return now.Add(r.TTL)
}

// normalizeTTL syncs TTL and TTLMillis after JSON decode / before encode.
func (r *Rule) normalizeTTL() {
	if r.TTL == 0 && r.TTLMillis != 0 {
		r.TTL = time.Duration(r.TTLMillis) * time.Millisecond
	}
	if r.TTLMillis == 0 && r.TTL != 0 {
		r.TTLMillis = r.TTL.Milliseconds()
	}
}
