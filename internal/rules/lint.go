package rules

import (
	"fmt"
	"strings"

	"oak/internal/htmlscan"
)

// Linting catches rule-set mistakes that compile fine but misbehave in
// production: alternatives that still point at the host being avoided,
// rules whose fragments shadow each other, and sub-rules that fight their
// parent. cmd/oakd runs the linter at startup; operators can run it in CI
// via oak.LintRules.

// LintWarning is one advisory finding. Lint never fails a rule set — these
// are judgement calls the operator may have made deliberately.
type LintWarning struct {
	// RuleID is the rule the warning is about ("" for set-wide findings).
	RuleID string
	// Code is a stable identifier, e.g. "alt-keeps-default-host".
	Code string
	// Message is the human-readable explanation.
	Message string
}

// String formats the warning.
func (w LintWarning) String() string {
	if w.RuleID == "" {
		return fmt.Sprintf("[%s] %s", w.Code, w.Message)
	}
	return fmt.Sprintf("rule %s: [%s] %s", w.RuleID, w.Code, w.Message)
}

// Lint inspects a compiled rule set and returns advisory warnings, sorted
// by rule order.
func Lint(rs []*Rule) []LintWarning {
	var out []LintWarning
	byDefault := make(map[string]string, len(rs)) // default text -> first rule id

	for _, r := range rs {
		// Set-wide: identical default fragments mean the first-listed rule
		// consumes the text and later ones silently never apply.
		if firstID, dup := byDefault[r.Default]; dup {
			out = append(out, LintWarning{
				RuleID: r.ID,
				Code:   "duplicate-default",
				Message: fmt.Sprintf(
					"default text identical to rule %s; whichever applies first wins", firstID),
			})
		} else {
			byDefault[r.Default] = r.ID
		}

		defaultHosts := r.DefaultHosts()

		// Replacement rules with no alternatives can never do anything:
		// Validate rejects them, but rule sets assembled in code (or edited
		// after validation) can still reach the engine, where the rule — and
		// population-level synthesis, which needs an alternative to offer —
		// silently skips.
		if (r.Type == TypeReplaceSame || r.Type == TypeReplaceAlt) && len(r.Alternatives) == 0 {
			out = append(out, LintWarning{
				RuleID: r.ID,
				Code:   "no-alternatives",
				Message: "replacement rule has an empty alternatives list; " +
					"it can never activate and synthesis skips it",
			})
		}

		// Alternatives that still reference a default host defeat the
		// switch: the client keeps contacting the violator.
		for i, alt := range r.Alternatives {
			for _, h := range defaultHosts {
				if htmlscan.ContainsHost(alt, h) {
					out = append(out, LintWarning{
						RuleID: r.ID,
						Code:   "alt-keeps-default-host",
						Message: fmt.Sprintf(
							"alternative %d still references default host %s", i, h),
					})
				}
			}
			if alt == r.Default {
				out = append(out, LintWarning{
					RuleID:  r.ID,
					Code:    "alt-equals-default",
					Message: fmt.Sprintf("alternative %d is identical to the default text", i),
				})
			}
			// An alternative with no extractable hostname is invisible to
			// the per-provider guard breakers and to synthesis outcome
			// attribution: it can activate but never be judged or tripped.
			if r.Type != TypeRemove && alt != "" &&
				len(htmlscan.ExtractSrcHosts(alt)) == 0 && len(htmlscan.HostsInText(alt)) == 0 {
				out = append(out, LintWarning{
					RuleID: r.ID,
					Code:   "alt-no-host",
					Message: fmt.Sprintf(
						"alternative %d references no hostname; guard breakers cannot attribute outcomes to it", i),
				})
			}
		}

		// A fragment with no discoverable host can never be tied to a
		// violator, so the rule can never activate.
		if len(defaultHosts) == 0 {
			out = append(out, LintWarning{
				RuleID: r.ID,
				Code:   "no-matchable-host",
				Message: "default text references no hostname; " +
					"no violator can ever activate this rule",
			})
		}

		// Sub-rules that re-introduce the default text undo the parent.
		for i, sub := range r.SubRules {
			if sub.Replace != "" && strings.Contains(sub.Replace, r.Default) {
				out = append(out, LintWarning{
					RuleID:  r.ID,
					Code:    "sub-reintroduces-default",
					Message: fmt.Sprintf("sub-rule %d replacement re-inserts the default text", i),
				})
			}
			if sub.Find == sub.Replace {
				out = append(out, LintWarning{
					RuleID:  r.ID,
					Code:    "sub-noop",
					Message: fmt.Sprintf("sub-rule %d replaces text with itself", i),
				})
			}
		}

		// Alternatives listed after one identical to a predecessor can
		// never be reached by linear progression distinctly.
		seenAlt := make(map[string]int, len(r.Alternatives))
		for i, alt := range r.Alternatives {
			if j, dup := seenAlt[alt]; dup {
				out = append(out, LintWarning{
					RuleID:  r.ID,
					Code:    "duplicate-alternative",
					Message: fmt.Sprintf("alternative %d duplicates alternative %d", i, j),
				})
			} else {
				seenAlt[alt] = i
			}
		}
	}

	// Overlapping fragments across rules: one rule's default contained in
	// another's means application order changes results.
	for i, a := range rs {
		for _, b := range rs[i+1:] {
			if a.Default == b.Default {
				continue // already reported as duplicate-default
			}
			if strings.Contains(a.Default, b.Default) || strings.Contains(b.Default, a.Default) {
				out = append(out, LintWarning{
					RuleID: b.ID,
					Code:   "overlapping-defaults",
					Message: fmt.Sprintf(
						"default text overlaps rule %s; application order will change results", a.ID),
				})
			}
		}
	}
	return out
}
