package rules

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// pageGen produces random page-like strings built from a small alphabet of
// tokens, so rule text has realistic chances of appearing.
type pageGen string

var _ quick.Generator = pageGen("")

var pageTokens = []string{
	"<html>", "</html>", "<img src=\"http://a.example/x.png\">",
	"<script src=\"http://b.example/y.js\"></script>",
	"TOKEN", "text ", "\n", "<div>ad</div>", "α β", "<p>",
}

func (pageGen) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(size + 1)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(pageTokens[r.Intn(len(pageTokens))])
	}
	return reflect.ValueOf(pageGen(b.String()))
}

var quickCfg = &quick.Config{MaxCount: 250}

// Property: applying a Type 1 rule is idempotent — a second application
// changes nothing, because the default text is gone.
func TestQuickType1Idempotent(t *testing.T) {
	rule := &Rule{ID: "r", Type: TypeRemove, Default: "<div>ad</div>", Scope: "*"}
	f := func(p pageGen) bool {
		once, _ := Apply(string(p), "/", []Activation{{Rule: rule}})
		twice, _ := Apply(once, "/", []Activation{{Rule: rule}})
		return once == twice && !strings.Contains(once, rule.Default)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: a Type 2 replacement whose alternative does not contain the
// default text is idempotent too.
func TestQuickType2Idempotent(t *testing.T) {
	rule := &Rule{
		ID: "r", Type: TypeReplaceSame,
		Default:      `<img src="http://a.example/x.png">`,
		Alternatives: []string{`<img src="http://alt.example/x.png">`},
		Scope:        "*",
	}
	f := func(p pageGen) bool {
		once, _ := Apply(string(p), "/", []Activation{{Rule: rule}})
		twice, _ := Apply(once, "/", []Activation{{Rule: rule}})
		return once == twice
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: application never invents the default text.
func TestQuickApplyNeverReintroducesDefault(t *testing.T) {
	rule := &Rule{
		ID: "r", Type: TypeReplaceSame,
		Default:      "TOKEN",
		Alternatives: []string{"SWAPPED"},
		Scope:        "*",
	}
	f := func(p pageGen) bool {
		out, _ := Apply(string(p), "/", []Activation{{Rule: rule}})
		return !strings.Contains(out, "TOKEN")
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: an out-of-scope rule never alters any page.
func TestQuickScopeIsolation(t *testing.T) {
	rule := &Rule{ID: "r", Type: TypeRemove, Default: "TOKEN", Scope: "/only/this.html"}
	f := func(p pageGen) bool {
		out, applied := Apply(string(p), "/other.html", []Activation{{Rule: rule}})
		return out == string(p) && len(applied) == 0
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: the reported replacement count matches the default text's
// occurrence count in the input (nil records when it never occurs).
func TestQuickReplacementCountAccurate(t *testing.T) {
	rule := &Rule{ID: "r", Type: TypeRemove, Default: "TOKEN", Scope: "*"}
	f := func(p pageGen) bool {
		want := strings.Count(string(p), "TOKEN")
		_, applied := Apply(string(p), "/", []Activation{{Rule: rule}})
		if want == 0 {
			return applied == nil
		}
		if len(applied) != 1 {
			return false
		}
		return applied[0].Replacements == want
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: DSL round trip through JSON preserves rule semantics for a
// sample of generated rule shapes.
func TestQuickRuleJSONRoundTrip(t *testing.T) {
	f := func(idRaw uint8, typRaw uint8, ttlRaw uint16) bool {
		typ := Type(typRaw%3 + 1)
		r := &Rule{
			ID:      string(rune('a'+idRaw%26)) + "-rule",
			Type:    typ,
			Default: "<div>block</div>",
			TTL:     0,
			Scope:   "*",
		}
		if typ != TypeRemove {
			r.Alternatives = []string{"<div>alt</div>"}
		}
		data, err := MarshalJSON([]*Rule{r})
		if err != nil {
			return false
		}
		back, err := ParseJSON(data)
		if err != nil || len(back) != 1 {
			return false
		}
		return back[0].ID == r.ID && back[0].Type == r.Type &&
			back[0].Default == r.Default && back[0].Scope == r.Scope
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}
