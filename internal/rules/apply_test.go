package rules

import (
	"reflect"
	"strings"
	"testing"
)

const applyPage = `<html><body>
<script src="http://s1.com/jquery.js"></script>
<img src="http://tracker.example/pixel.gif">
<div id="ad"><script src="http://ads-a.example/serve.js"></script></div>
</body></html>`

func TestApplyType2(t *testing.T) {
	r := &Rule{
		ID:           "jq",
		Type:         TypeReplaceSame,
		Default:      `<script src="http://s1.com/jquery.js">`,
		Alternatives: []string{`<script src="http://s2.net/jquery.js">`},
		Scope:        "*",
	}
	out, applied := Apply(applyPage, "/index.html", []Activation{{Rule: r}})
	if strings.Contains(out, "s1.com") {
		t.Error("default text still present after type2 apply")
	}
	if !strings.Contains(out, "s2.net") {
		t.Error("alternative text missing after type2 apply")
	}
	if len(applied) != 1 || applied[0].Replacements != 1 {
		t.Fatalf("applied = %+v, want 1 rule with 1 replacement", applied)
	}
	wantHint := []string{"http://s1.com/jquery.js=http://s2.net/jquery.js"}
	if !reflect.DeepEqual(applied[0].CacheHints, wantHint) {
		t.Errorf("CacheHints = %v, want %v", applied[0].CacheHints, wantHint)
	}
}

func TestApplyType1Removes(t *testing.T) {
	r := &Rule{
		ID:      "kill",
		Type:    TypeRemove,
		Default: `<img src="http://tracker.example/pixel.gif">`,
		Scope:   "*",
	}
	out, applied := Apply(applyPage, "/", []Activation{{Rule: r}})
	if strings.Contains(out, "tracker.example") {
		t.Error("tracker still present after type1 apply")
	}
	if applied[0].Replacements != 1 {
		t.Errorf("Replacements = %d, want 1", applied[0].Replacements)
	}
	if len(applied[0].CacheHints) != 0 {
		t.Errorf("type1 emitted cache hints: %v", applied[0].CacheHints)
	}
}

func TestApplyType3NoHints(t *testing.T) {
	r := &Rule{
		ID:           "ads",
		Type:         TypeReplaceAlt,
		Default:      `<div id="ad"><script src="http://ads-a.example/serve.js"></script></div>`,
		Alternatives: []string{`<div id="ad"><!-- house --></div>`},
		Scope:        "*",
	}
	out, applied := Apply(applyPage, "/", []Activation{{Rule: r}})
	if strings.Contains(out, "ads-a.example") {
		t.Error("type3 default still present")
	}
	if len(applied[0].CacheHints) != 0 {
		t.Errorf("type3 emitted cache hints: %v (only type2 objects are identical)", applied[0].CacheHints)
	}
}

func TestApplyOutOfScopeSkipped(t *testing.T) {
	r := &Rule{
		ID:      "scoped",
		Type:    TypeRemove,
		Default: "tracker.example",
		Scope:   "/checkout/*",
	}
	out, applied := Apply(applyPage, "/index.html", []Activation{{Rule: r}})
	if out != applyPage {
		t.Error("out-of-scope rule modified the page")
	}
	if len(applied) != 0 {
		t.Errorf("applied = %+v, want none", applied)
	}
}

func TestApplyNoMatchReturnsNil(t *testing.T) {
	r := &Rule{ID: "ghost", Type: TypeRemove, Default: "not on this page", Scope: "*"}
	out, applied := Apply(applyPage, "/", []Activation{{Rule: r}})
	if out != applyPage {
		t.Error("no-match rule modified the page")
	}
	if applied != nil {
		t.Errorf("applied = %+v, want nil when no rule replaces anything", applied)
	}
}

func TestApplyZeroRecordForNoMatchRuleAlongsideReplacement(t *testing.T) {
	ghost := &Rule{ID: "ghost", Type: TypeRemove, Default: "not on this page", Scope: "*"}
	hit := &Rule{ID: "hit", Type: TypeRemove, Default: `<img src="http://tracker.example/pixel.gif">`, Scope: "*"}
	out, applied := Apply(applyPage, "/", []Activation{{Rule: ghost}, {Rule: hit}})
	if out == applyPage {
		t.Error("hit rule did not modify the page")
	}
	if len(applied) != 2 {
		t.Fatalf("applied = %+v, want 2 records (zero-record + replacement)", applied)
	}
	if applied[0].RuleID != "ghost" || applied[0].Replacements != 0 {
		t.Errorf("applied[0] = %+v, want ghost with 0 replacements", applied[0])
	}
	if applied[1].RuleID != "hit" || applied[1].Replacements == 0 {
		t.Errorf("applied[1] = %+v, want hit with >0 replacements", applied[1])
	}
}

func TestApplyAltIndexSelectsAlternative(t *testing.T) {
	r := &Rule{
		ID:           "multi",
		Type:         TypeReplaceSame,
		Default:      "AAA",
		Alternatives: []string{"BBB", "CCC"},
		Scope:        "*",
	}
	out, _ := Apply("xAAAx", "/", []Activation{{Rule: r, AltIndex: 1}})
	if out != "xCCCx" {
		t.Errorf("AltIndex 1 produced %q, want xCCCx", out)
	}
}

func TestApplySubRulesOnlyWithParent(t *testing.T) {
	r := &Rule{
		ID:           "parent",
		Type:         TypeReplaceSame,
		Default:      "MAIN",
		Alternatives: []string{"ALT"},
		SubRules:     []SubRule{{Find: "flag=1", Replace: "flag=0"}},
		Scope:        "*",
	}
	// Parent matches: sub-rule applies too.
	out, _ := Apply("MAIN flag=1", "/", []Activation{{Rule: r}})
	if out != "ALT flag=0" {
		t.Errorf("got %q, want 'ALT flag=0'", out)
	}
	// Parent doesn't match: sub-rule must not fire.
	out, _ = Apply("OTHER flag=1", "/", []Activation{{Rule: r}})
	if out != "OTHER flag=1" {
		t.Errorf("got %q, want unchanged (sub-rules fire only with parent)", out)
	}
}

func TestApplyMultipleOccurrences(t *testing.T) {
	r := &Rule{ID: "m", Type: TypeRemove, Default: "X", Scope: "*"}
	out, applied := Apply("aXbXc", "/", []Activation{{Rule: r}})
	if out != "abc" {
		t.Errorf("got %q, want abc", out)
	}
	if applied[0].Replacements != 2 {
		t.Errorf("Replacements = %d, want 2", applied[0].Replacements)
	}
}

func TestApplyOrderMatters(t *testing.T) {
	r1 := &Rule{ID: "1", Type: TypeReplaceSame, Default: "A", Alternatives: []string{"B"}, Scope: "*"}
	r2 := &Rule{ID: "2", Type: TypeReplaceSame, Default: "B", Alternatives: []string{"C"}, Scope: "*"}
	out, _ := Apply("A", "/", []Activation{{Rule: r1}, {Rule: r2}})
	if out != "C" {
		t.Errorf("sequential application got %q, want C", out)
	}
}

func TestApplyNilRuleSkipped(t *testing.T) {
	out, applied := Apply("page", "/", []Activation{{Rule: nil}})
	if out != "page" || len(applied) != 0 {
		t.Errorf("nil rule: out=%q applied=%v", out, applied)
	}
}

func TestCacheHintValue(t *testing.T) {
	results := []Applied{
		{RuleID: "a", CacheHints: []string{"u1=v1"}},
		{RuleID: "b"},
		{RuleID: "c", CacheHints: []string{"u2=v2", "u3=v3"}},
	}
	got := CacheHintValue(results)
	if got != "u1=v1,u2=v2,u3=v3" {
		t.Errorf("CacheHintValue = %q", got)
	}
	if got := CacheHintValue(nil); got != "" {
		t.Errorf("CacheHintValue(nil) = %q, want empty", got)
	}
}

func TestCacheHintsIdenticalURLsElided(t *testing.T) {
	hints := cacheHints(`<script src="http://same.example/x.js">`, `<script src="http://same.example/x.js" defer>`)
	if len(hints) != 0 {
		t.Errorf("identical URL pair produced hints: %v", hints)
	}
}
