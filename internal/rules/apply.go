package rules

import (
	"strings"

	"oak/internal/htmlscan"
)

// CacheHintHeader is the custom HTTP response header through which Oak tells
// clients which objects were moved by Type 2 rules, so a cached copy fetched
// under the old URL can still be used (Section 4.3 of the paper). Its value
// is a comma-separated list of "oldURL=newURL" pairs.
const CacheHintHeader = "X-Oak-Alternate"

// Activation pairs a rule with the alternative the engine selected for a
// particular user.
type Activation struct {
	Rule *Rule
	// AltIndex selects which alternative to apply (ignored for Type 1).
	AltIndex int
	// Synthesized marks provenance: true when the activation came from
	// population-level rule synthesis rather than the user's own violation
	// history. It does not change how the rule applies — only how the
	// decision is reported and persisted.
	Synthesized bool
}

// Applied describes the outcome of applying one activation to a page.
type Applied struct {
	RuleID string
	// Replacements is how many times the default text was found and
	// replaced (0 means the rule matched nothing on this page).
	Replacements int
	// CacheHints lists "old=new" URL pairs for Type 2 rules.
	CacheHints []string
}

// Apply rewrites page (the outgoing HTML for path) according to the user's
// activations, in order. Rules whose scope does not cover path are skipped.
// It returns the rewritten page and a record of what was applied.
//
// Result semantics: when no rule replaces anything, Apply returns the page
// unchanged and a nil slice — the no-op serve path allocates nothing. When
// at least one rule replaces text, the result additionally carries one
// zero-Replacements record per in-scope rule that matched nothing, in
// activation order, so callers that count applied rules still see every
// in-scope rule that was considered.
//
// Application is plain text replacement, exactly as the paper's server does
// ("we use regular expressions in order to apply active rules, allowing for
// straight forward and rapid replacement of text before each page is
// served") — Oak deliberately treats page segments as abstract text blocks,
// not DOM nodes.
func Apply(page, path string, acts []Activation) (string, []Applied) {
	// Pre-scan: sub-rules fire only with their parent, so if no in-scope
	// default occurs in the page nothing can change — return without the
	// results allocation the zero-record bookkeeping would otherwise force.
	anyMatch := false
	for _, act := range acts {
		r := act.Rule
		if r == nil || !r.InScope(path) {
			continue
		}
		if strings.Contains(page, r.Default) {
			anyMatch = true
			break
		}
	}
	if !anyMatch {
		return page, nil
	}

	var results []Applied
	replaced := false
	for _, act := range acts {
		r := act.Rule
		if r == nil || !r.InScope(path) {
			continue
		}
		count := strings.Count(page, r.Default)
		if count == 0 {
			results = append(results, Applied{RuleID: r.ID})
			continue
		}
		var replacement string
		switch r.Type {
		case TypeRemove:
			replacement = ""
		case TypeReplaceSame, TypeReplaceAlt:
			replacement = r.Alternative(act.AltIndex)
		default:
			continue
		}
		failpoint(r.ID)
		page = strings.ReplaceAll(page, r.Default, replacement)
		replaced = true
		applied := Applied{RuleID: r.ID, Replacements: count}
		if r.Type == TypeReplaceSame {
			applied.CacheHints = cacheHints(r.Default, replacement)
		}
		for _, sub := range r.SubRules {
			page = strings.ReplaceAll(page, sub.Find, sub.Replace)
		}
		results = append(results, applied)
	}
	if !replaced {
		// Matches existed but no rule consumed one (unknown rule types):
		// nothing changed, so honour the nil-on-no-op contract.
		return page, nil
	}
	return page, results
}

// cacheHints pairs the URLs in the default text with the URLs in the
// replacement text positionally: for a Type 2 rule the alternative serves
// identical objects, so the i-th URL of each corresponds.
func cacheHints(defaultText, altText string) []string {
	oldURLs := htmlscan.URLsInText(defaultText)
	newURLs := htmlscan.URLsInText(altText)
	n := len(oldURLs)
	if len(newURLs) < n {
		n = len(newURLs)
	}
	hints := make([]string, 0, n)
	for i := 0; i < n; i++ {
		if oldURLs[i] != newURLs[i] {
			hints = append(hints, oldURLs[i]+"="+newURLs[i])
		}
	}
	return hints
}

// CacheHintValue joins the hints of several applications into the header
// value format.
func CacheHintValue(results []Applied) string {
	var all []string
	for _, res := range results {
		all = append(all, res.CacheHints...)
	}
	return strings.Join(all, ",")
}
