package rules

import (
	"strings"
	"testing"
	"time"
)

const dslSample = `
# The paper's running example: identical jquery on an alternate server.
rule jquery-cdn {
  type 2
  default <<<
    <script src="http://s1.com/jquery.js">
  >>>
  alt <<<
    <script src="http://s2.net/jquery.js">
  >>>
  ttl 0        # never expire
  scope *      # site wide
}

rule kill-tracker {
  type 1
  default "<img src=\"http://tracker.example/pixel.gif\">"
  ttl 30m
  scope /checkout/*
  sub "trackerEnabled = true" -> "trackerEnabled = false"
}

rule swap-ads {
  type 3
  default <<<
    <div id="ad-slot">
      <script src="http://ads-a.example/serve.js"></script>
    </div>
  >>>
  alt <<<
    <div id="ad-slot">
      <script src="http://ads-b.example/serve.js"></script>
    </div>
  >>>
  alt <<<
    <div id="ad-slot"><!-- house ad --></div>
  >>>
  ttl 1h
  scope re:^/(index|home)\.html$
}
`

func TestParseDSL(t *testing.T) {
	rs, err := ParseDSL(dslSample)
	if err != nil {
		t.Fatalf("ParseDSL: %v", err)
	}
	if len(rs) != 3 {
		t.Fatalf("got %d rules, want 3", len(rs))
	}

	jq := rs[0]
	if jq.ID != "jquery-cdn" || jq.Type != TypeReplaceSame {
		t.Errorf("rule 0 = %s/%v, want jquery-cdn/type2", jq.ID, jq.Type)
	}
	if jq.Default != `<script src="http://s1.com/jquery.js">` {
		t.Errorf("rule 0 default = %q (dedent failed?)", jq.Default)
	}
	if jq.TTL != 0 || jq.Scope != "*" {
		t.Errorf("rule 0 ttl/scope = %v/%q", jq.TTL, jq.Scope)
	}

	kt := rs[1]
	if kt.Type != TypeRemove || kt.TTL != 30*time.Minute {
		t.Errorf("rule 1 = %v ttl %v, want type1 30m", kt.Type, kt.TTL)
	}
	if len(kt.SubRules) != 1 || kt.SubRules[0].Replace != "trackerEnabled = false" {
		t.Errorf("rule 1 subrules = %+v", kt.SubRules)
	}
	if !kt.InScope("/checkout/pay.html") || kt.InScope("/home.html") {
		t.Error("rule 1 scope wildcard misbehaves")
	}

	sw := rs[2]
	if len(sw.Alternatives) != 2 {
		t.Fatalf("rule 2 has %d alternatives, want 2", len(sw.Alternatives))
	}
	if !strings.Contains(sw.Alternatives[0], "ads-b.example") {
		t.Errorf("rule 2 alt 0 = %q", sw.Alternatives[0])
	}
	if !strings.Contains(sw.Default, "\n") {
		t.Error("rule 2 default lost multi-line structure")
	}
	if !sw.InScope("/index.html") || sw.InScope("/other.html") {
		t.Error("rule 2 regexp scope misbehaves")
	}
}

func TestParseDSLErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"nested rule", "rule a {\nrule b {\n}\n}"},
		{"stray close", "}"},
		{"directive outside", "type 2"},
		{"bad type", "rule a {\ntype x\n}"},
		{"missing heredoc end", "rule a {\ndefault <<<\nbody"},
		{"bad ttl", "rule a {\nttl banana\n}"},
		{"bad sub", `rule a {` + "\n" + `sub "x" "y"` + "\n}"},
		{"empty sub find", `rule a {` + "\n" + `sub "" -> "y"` + "\n}"},
		{"unterminated rule", "rule a {\ntype 1\n"},
		{"invalid rule on close", "rule a {\ntype 2\ndefault \"d\"\n}"}, // type2 without alt
		{"bad inline default", "rule a {\ndefault notquoted\n}"},
		{"bad rule header", "rule a\n"},
		{"unknown directive", "rule a {\nfrobnicate 3\n}"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseDSL(tt.in); err == nil {
				t.Errorf("ParseDSL(%q) = nil error, want error", tt.in)
			}
		})
	}
}

func TestParseDSLEmpty(t *testing.T) {
	rs, err := ParseDSL("\n# only comments\n\n")
	if err != nil {
		t.Fatalf("ParseDSL(comments) = %v", err)
	}
	if len(rs) != 0 {
		t.Errorf("got %d rules, want 0", len(rs))
	}
}

func TestParseDSLCommentInsideQuote(t *testing.T) {
	in := "rule a {\ntype 1\ndefault \"has # hash\"\n}"
	rs, err := ParseDSL(in)
	if err != nil {
		t.Fatalf("ParseDSL: %v", err)
	}
	if rs[0].Default != "has # hash" {
		t.Errorf("Default = %q, want quoted hash preserved", rs[0].Default)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	orig, err := ParseDSL(dslSample)
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalJSON(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseJSON(data)
	if err != nil {
		t.Fatalf("ParseJSON: %v", err)
	}
	if len(back) != len(orig) {
		t.Fatalf("round trip count %d != %d", len(back), len(orig))
	}
	for i := range orig {
		if back[i].ID != orig[i].ID || back[i].Type != orig[i].Type ||
			back[i].Default != orig[i].Default || back[i].TTL != orig[i].TTL ||
			back[i].Scope != orig[i].Scope {
			t.Errorf("rule %d mismatch after round trip:\n got %+v\nwant %+v", i, back[i], orig[i])
		}
	}
}

func TestParseJSONErrors(t *testing.T) {
	if _, err := ParseJSON([]byte("{")); err == nil {
		t.Error("ParseJSON(bad json): want error")
	}
	// Structurally valid JSON, semantically invalid rule.
	if _, err := ParseJSON([]byte(`[{"id":"","type":2,"default":"d"}]`)); err == nil {
		t.Error("ParseJSON(invalid rule): want error")
	}
}

func TestParseJSONTTLMillis(t *testing.T) {
	rs, err := ParseJSON([]byte(`[{"id":"a","type":1,"default":"d","ttlMillis":60000,"scope":"*"}]`))
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].TTL != time.Minute {
		t.Errorf("TTL = %v, want 1m from ttlMillis", rs[0].TTL)
	}
}

func TestDedent(t *testing.T) {
	got := dedent([]string{"    line1", "      line2", "", "    line3"})
	want := "line1\n  line2\n\nline3"
	if got != want {
		t.Errorf("dedent = %q, want %q", got, want)
	}
}

func TestDedentAllBlank(t *testing.T) {
	if got := dedent([]string{"", "  "}); got != "" {
		t.Errorf("dedent(blank) = %q, want empty", got)
	}
}
