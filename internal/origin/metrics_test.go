package origin

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"oak/internal/core"
	"oak/internal/obs"
	"oak/internal/rules"
)

// slowReportBody is a report where 9.9.9.9 badly under-performs three peers.
func slowReportBody(user string) string {
	return fmt.Sprintf(`{"userId":%q,"page":"/index.html","entries":[
	  {"url":"http://slow.example/x.png","serverAddr":"9.9.9.9","sizeBytes":1000,"durationMillis":3000},
	  {"url":"http://a.example/a.png","serverAddr":"1.1.1.1","sizeBytes":1000,"durationMillis":100},
	  {"url":"http://b.example/b.png","serverAddr":"2.2.2.2","sizeBytes":1000,"durationMillis":110},
	  {"url":"http://c.example/c.png","serverAddr":"3.3.3.3","sizeBytes":1000,"durationMillis":95}
	]}`, user)
}

func swapRule() *rules.Rule {
	return &rules.Rule{
		ID:           "swap",
		Type:         rules.TypeReplaceSame,
		Default:      `<img src="http://slow.example/x.png">`,
		Alternatives: []string{`<img src="http://fast.example/x.png">`},
		Scope:        "*",
	}
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("GET %s Content-Type = %q, want application/json", url, ct)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

// postReport POSTs one report as the given user.
func postReport(t *testing.T, tsURL, user string) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodPost, tsURL+ReportPath, strings.NewReader(slowReportBody(user)))
	req.AddCookie(&http.Cookie{Name: CookieName, Value: user})
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("POST report = %d", resp.StatusCode)
	}
}

// TestMetricsEndpointConcurrent round-trips /oak/metrics JSON while many
// clients ingest reports and load pages; run with -race.
func TestMetricsEndpointConcurrent(t *testing.T) {
	s := newTestServer(t, []*rules.Rule{swapRule()})
	s.SetPage("/index.html", `<html><img src="http://slow.example/x.png"></html>`)
	ts := httptest.NewServer(s)
	defer ts.Close()

	const users = 4
	const rounds = 10
	var wg sync.WaitGroup
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			user := fmt.Sprintf("u%d", u)
			for i := 0; i < rounds; i++ {
				postReport(t, ts.URL, user)
				req, _ := http.NewRequest(http.MethodGet, ts.URL+"/index.html", nil)
				req.AddCookie(&http.Cookie{Name: CookieName, Value: user})
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				var m MetricsResponse
				getJSON(t, ts.URL+MetricsPath, &m)
			}
		}(u)
	}
	wg.Wait()

	var m MetricsResponse
	getJSON(t, ts.URL+MetricsPath, &m)
	if m.Counters.ReportsHandled != users*rounds {
		t.Errorf("ReportsHandled = %d, want %d", m.Counters.ReportsHandled, users*rounds)
	}
	if m.Ingest.Count != users*rounds {
		t.Errorf("Ingest.Count = %d, want %d", m.Ingest.Count, users*rounds)
	}
	if m.Rewrite.Count != users*rounds {
		t.Errorf("Rewrite.Count = %d, want %d", m.Rewrite.Count, users*rounds)
	}
	if m.Ingest.P99Ms <= 0 || m.Ingest.MaxMs <= 0 {
		t.Errorf("ingest histogram not populated: %+v", m.Ingest)
	}
	if len(m.IngestBuckets) == 0 || len(m.RewriteBuckets) == 0 {
		t.Error("histogram buckets missing from metrics JSON")
	}
	if m.Counters.PagesModified == 0 {
		t.Errorf("PagesModified = 0, want > 0 (rule should have activated); counters %+v", m.Counters)
	}
}

func TestTraceEndpointBounds(t *testing.T) {
	engine, err := core.NewEngine([]*rules.Rule{swapRule()}, core.WithTraceCapacity(16))
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(engine)
	ts := httptest.NewServer(s)
	defer ts.Close()

	var evs []obs.Event
	getJSON(t, ts.URL+TracePath, &evs)
	if len(evs) != 0 {
		t.Errorf("fresh trace = %d events, want 0 (and [] not null)", len(evs))
	}

	for i := 0; i < 30; i++ {
		postReport(t, ts.URL, "u1")
	}
	getJSON(t, ts.URL+TracePath+"?n=5", &evs)
	if len(evs) != 5 {
		t.Fatalf("trace?n=5 = %d events", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Errorf("events out of order: seq %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
	// Asking for more than the ring holds returns the whole ring, no more.
	getJSON(t, ts.URL+TracePath+"?n=10000", &evs)
	if len(evs) != 16 {
		t.Errorf("trace?n=10000 = %d events, want ring capacity 16", len(evs))
	}
	// Default window is 100.
	getJSON(t, ts.URL+TracePath, &evs)
	if len(evs) != 16 {
		t.Errorf("trace default = %d events, want 16", len(evs))
	}

	for _, bad := range []string{"?n=0", "?n=-3", "?n=x"} {
		resp, err := http.Get(ts.URL + TracePath + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("trace%s = %d, want 400", bad, resp.StatusCode)
		}
	}
}

func TestHealthzBeforeAfterStateImport(t *testing.T) {
	// A first server learns state from a report.
	s1 := newTestServer(t, []*rules.Rule{swapRule()})
	ts1 := httptest.NewServer(s1)
	defer ts1.Close()

	var h HealthzResponse
	getJSON(t, ts1.URL+HealthzPath, &h)
	if h.Status != "ok" || h.Users != 0 || h.Rules != 1 || h.Reports != 0 {
		t.Errorf("fresh healthz = %+v, want ok/0 users/1 rule/0 reports", h)
	}
	if h.UptimeSeconds < 0 {
		t.Errorf("uptime = %f, want >= 0", h.UptimeSeconds)
	}
	postReport(t, ts1.URL, "u1")
	getJSON(t, ts1.URL+HealthzPath, &h)
	if h.Users != 1 || h.Reports != 1 {
		t.Errorf("healthz after report = %+v, want 1 user / 1 report", h)
	}

	// A restarted server importing that state reports the users immediately.
	state, err := s1.Engine().ExportState()
	if err != nil {
		t.Fatal(err)
	}
	s2 := newTestServer(t, []*rules.Rule{swapRule()})
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	getJSON(t, ts2.URL+HealthzPath, &h)
	if h.Users != 0 {
		t.Fatalf("second server healthz before import = %+v", h)
	}
	if err := s2.Engine().ImportState(state); err != nil {
		t.Fatal(err)
	}
	getJSON(t, ts2.URL+HealthzPath, &h)
	if h.Users != 1 {
		t.Errorf("healthz after import = %+v, want 1 user", h)
	}
	if h.Reports != 0 {
		t.Errorf("Reports after import = %d, want 0 (counters are per-process)", h.Reports)
	}
}

func TestObservabilityEndpointsGetOnly(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()
	for _, path := range []string{MetricsPath, HealthzPath, TracePath} {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s = %d, want 405", path, resp.StatusCode)
		}
	}
}
