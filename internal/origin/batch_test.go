package origin

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"oak/internal/core"
	"oak/internal/rules"
)

// batchLine renders one NDJSON report line for a user with a clear violator.
func batchLine(user string) string {
	return fmt.Sprintf(`{"userId":%q,"page":"/","entries":[`+
		`{"url":"http://slow.example/x.png","serverAddr":"9.9.9.9","sizeBytes":1000,"durationMillis":3000},`+
		`{"url":"http://a.example/a.png","serverAddr":"1.1.1.1","sizeBytes":1000,"durationMillis":100},`+
		`{"url":"http://b.example/b.png","serverAddr":"2.2.2.2","sizeBytes":1000,"durationMillis":110},`+
		`{"url":"http://c.example/c.png","serverAddr":"3.3.3.3","sizeBytes":1000,"durationMillis":95}]}`, user)
}

func postBatch(t *testing.T, tsURL, contentType, body string) (*http.Response, core.BatchResult) {
	t.Helper()
	resp, err := http.Post(tsURL+ReportPath, contentType, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var res core.BatchResult
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatalf("decode batch response: %v", err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp, res
}

func TestBatchEndpointIngestsNDJSON(t *testing.T) {
	s := newTestServer(t, []*rules.Rule{swapRule()})
	ts := httptest.NewServer(s)
	defer ts.Close()

	var b strings.Builder
	for i := 0; i < 25; i++ {
		b.WriteString(batchLine(fmt.Sprintf("batch-u%d", i)))
		b.WriteString("\n")
		if i%5 == 0 {
			b.WriteString("\n") // blank lines are allowed
		}
	}
	resp, res := postBatch(t, ts.URL, BatchContentType, b.String())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d, want 200", resp.StatusCode)
	}
	if res.Submitted != 25 || res.Processed != 25 || res.Failed != 0 {
		t.Fatalf("batch result = %+v", res)
	}
	if got := s.Engine().Users(); got != 25 {
		t.Errorf("engine users = %d, want 25", got)
	}
	// Every user activated the swap rule.
	if st := s.Engine().Ledger().Stats(); len(st) != 1 || st[0].Users != 25 {
		t.Errorf("ledger stats = %+v, want swap across 25 users", st)
	}
}

func TestBatchEndpointAlternateContentTypes(t *testing.T) {
	for _, ct := range []string{"application/ndjson", "application/jsonl", "application/x-ndjson; charset=utf-8"} {
		s := newTestServer(t, nil)
		ts := httptest.NewServer(s)
		resp, res := postBatch(t, ts.URL, ct, batchLine("u1")+"\n")
		if resp.StatusCode != http.StatusOK || res.Processed != 1 {
			t.Errorf("%s: status=%d result=%+v", ct, resp.StatusCode, res)
		}
		ts.Close()
	}
}

func TestBatchEndpointPartialFailure(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	body := batchLine("good-1") + "\n" +
		"{not json}\n" +
		`{"userId":"","page":"/"}` + "\n" + // fails validation
		batchLine("good-2") + "\n"
	resp, res := postBatch(t, ts.URL, BatchContentType, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d, want 200 (batches are not transactional)", resp.StatusCode)
	}
	if res.Submitted != 4 || res.Processed != 2 || res.Failed != 2 {
		t.Fatalf("batch result = %+v", res)
	}
	if len(res.Errors) == 0 {
		t.Error("no error samples in partial-failure response")
	}
	if got := s.Engine().Users(); got != 2 {
		t.Errorf("engine users = %d, want 2", got)
	}
}

func TestBatchEndpointEmptyBody(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, _ := postBatch(t, ts.URL, BatchContentType, "\n\n")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch status = %d, want 400", resp.StatusCode)
	}
}

func TestBatchEndpointLineTooLarge(t *testing.T) {
	engine, err := core.NewEngine(nil)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(engine, WithMaxBodyBytes(256))
	ts := httptest.NewServer(s)
	defer ts.Close()

	long := `{"userId":"u","page":"/","entries":[{"url":"http://x/` + strings.Repeat("a", 400) + `"}]}`
	resp, _ := postBatch(t, ts.URL, BatchContentType, long+"\n")
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized line status = %d, want 413", resp.StatusCode)
	}
}

func TestBatchEndpointCookieStampsIdentity(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Two lines claiming different users, but the cookie owns both.
	body := batchLine("impostor-1") + "\n" + batchLine("impostor-2") + "\n"
	req, _ := http.NewRequest(http.MethodPost, ts.URL+ReportPath, strings.NewReader(body))
	req.Header.Set("Content-Type", BatchContentType)
	req.AddCookie(&http.Cookie{Name: CookieName, Value: "real-user"})
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	if got := s.Engine().Users(); got != 1 {
		t.Errorf("engine users = %d, want 1 (cookie is authoritative)", got)
	}
	if _, ok := s.Engine().Snapshot("real-user"); !ok {
		t.Error("cookie identity did not receive the reports")
	}
	if _, ok := s.Engine().Snapshot("impostor-1"); ok {
		t.Error("body-declared identity bypassed the cookie")
	}
}

// TestBatchEndpointWithPipeline exercises the full HTTP → queue → worker →
// shard path.
func TestBatchEndpointWithPipeline(t *testing.T) {
	engine, err := core.NewEngine([]*rules.Rule{swapRule()},
		core.WithShards(8),
		core.WithIngestPipeline(core.IngestConfig{Workers: 2, QueueLen: 8}))
	if err != nil {
		t.Fatal(err)
	}
	defer engine.Close()
	s := NewServer(engine)
	ts := httptest.NewServer(s)
	defer ts.Close()

	var b strings.Builder
	for i := 0; i < 60; i++ {
		b.WriteString(batchLine(fmt.Sprintf("pipe-u%d", i)))
		b.WriteString("\n")
	}
	resp, res := postBatch(t, ts.URL, BatchContentType, b.String())
	if resp.StatusCode != http.StatusOK || res.Processed != 60 || res.Failed != 0 {
		t.Fatalf("status=%d result=%+v", resp.StatusCode, res)
	}
	if got := engine.Users(); got != 60 {
		t.Errorf("engine users = %d, want 60", got)
	}

	// The metrics endpoint reports the (drained) queue.
	var m MetricsResponse
	getJSON(t, ts.URL+MetricsPath, &m)
	if m.IngestQueue == nil || m.IngestQueue.Capacity != 16 {
		t.Errorf("ingest_queue = %+v, want capacity 16", m.IngestQueue)
	}
	if m.Shards != 8 {
		t.Errorf("shards = %d, want 8", m.Shards)
	}
	if len(m.IngestShards) == 0 {
		t.Error("no per-shard ingest summaries")
	}
}
