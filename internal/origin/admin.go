package origin

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"oak/internal/core"
)

// Cluster administration endpoints. These exist only under the versioned
// prefix — the unversioned alias surface is frozen — and, like the audit
// and metrics endpoints, are operator-facing: deployments must restrict
// access to them. They are the server half of the cluster gateway's
// control plane: snapshot shipping for node replacement, and the
// quarantine/degrade verbs the gateway uses to broadcast one node's
// discovery fleet-wide.
const (
	// StatePathV1 exports (GET) and imports (POST) the engine's checksummed
	// OAKSNAP2 snapshot over HTTP. Optional ?lo=&hi= query parameters (both
	// or neither, 32-bit values) restrict the operation to one arc of the
	// user-hash ring: a range GET exports only the arc's profiles, a range
	// POST replaces only the arc. A whole POST marks the node's state
	// source as "shipped" — it was rehydrated from another node.
	StatePathV1 = V1Prefix + "/state"
	// GuardQuarantinePathV1 force-opens a provider's breaker and rolls back
	// its activations (POST ?provider=). 404 without WithGuard.
	GuardQuarantinePathV1 = V1Prefix + "/guard/quarantine"
	// GuardReleasePathV1 force-closes a provider's breaker (POST
	// ?provider=). 404 without WithGuard.
	GuardReleasePathV1 = V1Prefix + "/guard/release"
	// PopulationDegradePathV1 manually marks a provider degraded (POST
	// ?provider=). 404 without WithSynthesis.
	PopulationDegradePathV1 = V1Prefix + "/population/degrade"
	// PopulationClearPathV1 clears a provider's degraded episode (POST
	// ?provider=). 404 without WithSynthesis.
	PopulationClearPathV1 = V1Prefix + "/population/clear"
)

// maxStateBytes bounds POSTed snapshots. State files scale with the user
// population, so the bound is far above the report bounds — it exists to
// stop a runaway body, not to police legitimate snapshots.
const maxStateBytes = 256 << 20

// stateRange parses the optional ?lo=&hi= pair into a HashRange. Returns
// (whole-space range, false, nil) when neither parameter is present; one
// without the other, or an unparseable value, is an error.
func stateRange(r *http.Request) (core.HashRange, bool, error) {
	q := r.URL.Query()
	loS, hiS := q.Get("lo"), q.Get("hi")
	if loS == "" && hiS == "" {
		return core.HashRange{}, false, nil
	}
	if loS == "" || hiS == "" {
		return core.HashRange{}, false, errors.New("lo and hi must be given together")
	}
	lo, err := strconv.ParseUint(loS, 0, 32)
	if err != nil {
		return core.HashRange{}, false, fmt.Errorf("bad lo: %v", err)
	}
	hi, err := strconv.ParseUint(hiS, 0, 32)
	if err != nil {
		return core.HashRange{}, false, fmt.Errorf("bad hi: %v", err)
	}
	return core.HashRange{Lo: uint32(lo), Hi: uint32(hi)}, true, nil
}

// handleState serves the snapshot-shipping endpoint: GET exports the
// engine's OAKSNAP2 snapshot (optionally one hash-ring arc), POST imports
// one. A whole-snapshot POST is the node-replacement path and flips the
// engine's state source to "shipped"; a range POST splices the arc in
// without touching the rest of the population or the state source.
func (s *Server) handleState(w http.ResponseWriter, r *http.Request) {
	rng, ranged, err := stateRange(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodGet:
		var data []byte
		var eerr error
		if ranged {
			data, eerr = s.engine.ExportSnapshotRange(rng)
		} else {
			data, eerr = s.engine.ExportSnapshot()
		}
		if eerr != nil {
			http.Error(w, eerr.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.Itoa(len(data)))
		_, _ = w.Write(data)
	case http.MethodPost:
		body, rerr := io.ReadAll(io.LimitReader(r.Body, maxStateBytes+1))
		if rerr != nil {
			http.Error(w, "read body", http.StatusBadRequest)
			return
		}
		if len(body) > maxStateBytes {
			http.Error(w, "snapshot too large", http.StatusRequestEntityTooLarge)
			return
		}
		var ierr error
		if ranged {
			ierr = s.engine.ImportStateRange(rng, body)
		} else {
			ierr = s.engine.ImportShippedState(body)
		}
		switch {
		case ierr == nil:
			w.WriteHeader(http.StatusNoContent)
		case errors.Is(ierr, core.ErrCorruptState), errors.Is(ierr, core.ErrStateVersion):
			http.Error(w, ierr.Error(), http.StatusBadRequest)
		default:
			http.Error(w, ierr.Error(), http.StatusInternalServerError)
		}
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// controlProvider validates a POST ?provider= control request, returning
// the provider name or "" after writing the error response.
func controlProvider(w http.ResponseWriter, r *http.Request, enabled bool, subsystem string) string {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return ""
	}
	if !enabled {
		// Mirror the population endpoint's behaviour: a subsystem the engine
		// was built without does not exist on the wire.
		http.Error(w, subsystem+" not enabled", http.StatusNotFound)
		return ""
	}
	p := r.URL.Query().Get("provider")
	if p == "" {
		http.Error(w, "provider parameter required", http.StatusBadRequest)
		return ""
	}
	return p
}

// handleGuardQuarantine force-opens a provider's breaker and rolls back its
// activations — the receiving half of the gateway's breaker broadcast.
func (s *Server) handleGuardQuarantine(w http.ResponseWriter, r *http.Request) {
	_, guarded := s.engine.GuardStatus()
	p := controlProvider(w, r, guarded, "guard")
	if p == "" {
		return
	}
	s.engine.QuarantineProvider(p)
	w.WriteHeader(http.StatusNoContent)
}

// handleGuardRelease force-closes a provider's breaker.
func (s *Server) handleGuardRelease(w http.ResponseWriter, r *http.Request) {
	_, guarded := s.engine.GuardStatus()
	p := controlProvider(w, r, guarded, "guard")
	if p == "" {
		return
	}
	s.engine.ReleaseProvider(p)
	w.WriteHeader(http.StatusNoContent)
}

// handlePopulationDegrade manually marks a provider degraded — the
// receiving half of the gateway's degraded-episode broadcast.
func (s *Server) handlePopulationDegrade(w http.ResponseWriter, r *http.Request) {
	_, enabled := s.engine.PopulationStatus()
	p := controlProvider(w, r, enabled, "population detection")
	if p == "" {
		return
	}
	s.engine.MarkDegraded(p)
	w.WriteHeader(http.StatusNoContent)
}

// handlePopulationClear clears a provider's degraded episode.
func (s *Server) handlePopulationClear(w http.ResponseWriter, r *http.Request) {
	_, enabled := s.engine.PopulationStatus()
	p := controlProvider(w, r, enabled, "population detection")
	if p == "" {
		return
	}
	s.engine.ClearDegraded(p)
	w.WriteHeader(http.StatusNoContent)
}
