package origin

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"oak/internal/core"
	"oak/internal/rules"
)

// The versioned v1 surface must be an alias, not a fork: every /oak/v1/*
// path answers with exactly the bytes its legacy twin produces, and the
// legacy paths keep working so pre-v1 clients are untouched.

// get fetches a path and returns status + body.
func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestV1PathsAliasLegacyPathsByteIdentical(t *testing.T) {
	s := newTestServer(t, []*rules.Rule{swapRule()})
	s.SetPage("/index.html", `<html><img src="http://slow.example/x.png"></html>`)
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Quiesce traffic first so paired GETs see identical state.
	postReport(t, ts.URL, "u1")

	for _, pair := range [][2]string{
		{MetricsPath, MetricsPathV1},
		{TracePath, TracePathV1},
	} {
		legacyStatus, legacyBody := get(t, ts.URL+pair[0])
		v1Status, v1Body := get(t, ts.URL+pair[1])
		if legacyStatus != http.StatusOK || v1Status != http.StatusOK {
			t.Fatalf("GET %s = %d, GET %s = %d, want 200/200",
				pair[0], legacyStatus, pair[1], v1Status)
		}
		if !bytes.Equal(legacyBody, v1Body) {
			t.Errorf("%s and %s bodies differ:\n--- legacy\n%s\n--- v1\n%s",
				pair[0], pair[1], legacyBody, v1Body)
		}
	}

	// Healthz carries a wall-clock uptime, so compare it field-wise with
	// the uptime zeroed instead of byte-wise.
	var legacy, v1 HealthzResponse
	if st, body := get(t, ts.URL+HealthzPath); st != http.StatusOK {
		t.Fatalf("GET %s = %d", HealthzPath, st)
	} else if err := json.Unmarshal(body, &legacy); err != nil {
		t.Fatal(err)
	}
	if st, body := get(t, ts.URL+HealthzPathV1); st != http.StatusOK {
		t.Fatalf("GET %s = %d", HealthzPathV1, st)
	} else if err := json.Unmarshal(body, &v1); err != nil {
		t.Fatal(err)
	}
	legacy.UptimeSeconds, v1.UptimeSeconds = 0, 0
	lb, _ := json.Marshal(legacy)
	vb, _ := json.Marshal(v1)
	if !bytes.Equal(lb, vb) {
		t.Errorf("healthz differs across versions:\nlegacy %s\nv1     %s", lb, vb)
	}
}

func TestV1ReportPathIngests(t *testing.T) {
	s := newTestServer(t, []*rules.Rule{swapRule()})
	ts := httptest.NewServer(s)
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodPost, ts.URL+ReportPathV1, strings.NewReader(slowReportBody("v1user")))
	req.AddCookie(&http.Cookie{Name: CookieName, Value: "v1user"})
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("POST %s = %d, want 204", ReportPathV1, resp.StatusCode)
	}
	if got := s.engine.Metrics().ReportsHandled; got != 1 {
		t.Errorf("ReportsHandled = %d, want 1", got)
	}
}

func TestPopulationEndpointServesStatus(t *testing.T) {
	engine, err := core.NewEngine([]*rules.Rule{swapRule()},
		core.WithSynthesis(core.SynthesisConfig{Window: time.Minute}))
	if err != nil {
		t.Fatal(err)
	}
	engine.MarkDegraded("slow.example")
	ts := httptest.NewServer(NewServer(engine))
	defer ts.Close()

	for _, path := range []string{PopulationPath, PopulationPathV1} {
		st, body := get(t, ts.URL+path)
		if st != http.StatusOK {
			t.Fatalf("GET %s = %d, want 200", path, st)
		}
		var ps core.PopulationStatus
		if err := json.Unmarshal(body, &ps); err != nil {
			t.Fatalf("GET %s: decode: %v", path, err)
		}
		if len(ps.Degraded) != 1 || ps.Degraded[0].Provider != "slow.example" || !ps.Degraded[0].Manual {
			t.Errorf("GET %s degraded = %+v, want one manual slow.example episode", path, ps.Degraded)
		}
	}

	// The flag also surfaces on healthz, where load balancers look.
	var hz HealthzResponse
	if _, body := get(t, ts.URL+HealthzPathV1); json.Unmarshal(body, &hz) != nil {
		t.Fatal("healthz decode failed")
	}
	if len(hz.DegradedProviders) != 1 || hz.DegradedProviders[0] != "slow.example" {
		t.Errorf("healthz DegradedProviders = %v, want [slow.example]", hz.DegradedProviders)
	}
}

func TestPopulationEndpoint404WithoutSynthesis(t *testing.T) {
	s := newTestServer(t, []*rules.Rule{swapRule()}) // no WithSynthesis
	ts := httptest.NewServer(s)
	defer ts.Close()

	for _, path := range []string{PopulationPath, PopulationPathV1} {
		st, _ := get(t, ts.URL+path)
		if st != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404 on a synthesis-less engine", path, st)
		}
	}
}
