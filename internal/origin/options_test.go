package origin

import (
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"testing/fstest"
)

func TestWithUserIDFunc(t *testing.T) {
	s := newTestServer(t, nil)
	engine := s.Engine()
	s2 := NewServer(engine, WithUserIDFunc(func(r *http.Request) string {
		return r.Header.Get("X-Session-User")
	}))
	s2.SetPage("/", "<html></html>")
	ts := httptest.NewServer(s2)
	defer ts.Close()

	// Identified request: no cookie is issued, and reports land on the
	// header identity even when the body claims otherwise.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/", nil)
	req.Header.Set("X-Session-User", "alice")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if len(resp.Cookies()) != 0 {
		t.Error("cookie issued despite custom identity")
	}

	req, _ = http.NewRequest(http.MethodPost, ts.URL+ReportPath, strings.NewReader(slowReportBody("mallory")))
	req.Header.Set("X-Session-User", "alice")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("report status = %d", resp.StatusCode)
	}
	if _, ok := engine.Snapshot("alice"); !ok {
		t.Error("report not attributed to header identity")
	}
	if _, ok := engine.Snapshot("mallory"); ok {
		t.Error("body identity overrode the custom user-ID function")
	}

	// Unidentified request falls back to the cookie mechanism.
	resp, err = http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	var issued bool
	for _, c := range resp.Cookies() {
		issued = issued || c.Name == CookieName
	}
	if !issued {
		t.Error("no cookie fallback when the user-ID function returns \"\"")
	}
}

func TestWithMaxBodyBytes(t *testing.T) {
	s := newTestServer(t, nil)
	small := NewServer(s.Engine(), WithMaxBodyBytes(64))
	ts := httptest.NewServer(small)
	defer ts.Close()

	resp, err := http.Post(ts.URL+ReportPath, "application/json",
		strings.NewReader(strings.Repeat("x", 100)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("status = %d, want 413 at the lowered bound", resp.StatusCode)
	}

	// Non-positive keeps the default.
	def := NewServer(s.Engine(), WithMaxBodyBytes(0))
	if def.maxBodyBytes != maxReportBytes {
		t.Errorf("WithMaxBodyBytes(0) left bound %d, want default %d", def.maxBodyBytes, maxReportBytes)
	}
}

func TestWithPagesFrom(t *testing.T) {
	fsys := fstest.MapFS{
		"index.html":      {Data: []byte("<html>root</html>")},
		"docs/index.html": {Data: []byte("<html>docs</html>")},
		"docs/guide.html": {Data: []byte("<html>guide</html>")},
		"style.css":       {Data: []byte("not a page")},
	}
	s := newTestServer(t, nil)
	s2 := NewServer(s.Engine(), WithPagesFrom(fsys))

	want := []string{"/", "/docs/", "/docs/guide.html", "/docs/index.html", "/index.html"}
	if got := s2.Pages(); !reflect.DeepEqual(got, want) {
		t.Errorf("Pages() = %v, want %v", got, want)
	}

	ts := httptest.NewServer(s2)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/docs/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "docs") {
		t.Errorf("GET /docs/ = %q", body)
	}
}

func TestRemovePageAndPages(t *testing.T) {
	s := newTestServer(t, nil)
	s.SetPage("/a.html", "<html>a</html>")
	s.SetPage("/b.html", "<html>b</html>")
	if got := s.Pages(); !reflect.DeepEqual(got, []string{"/a.html", "/b.html"}) {
		t.Fatalf("Pages() = %v", got)
	}

	s.RemovePage("/a.html")
	s.RemovePage("/never-was.html") // removing an unknown path is a no-op
	if got := s.Pages(); !reflect.DeepEqual(got, []string{"/b.html"}) {
		t.Fatalf("Pages() after remove = %v", got)
	}

	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/a.html")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("removed page status = %d, want 404", resp.StatusCode)
	}
}

func TestLoadPagesLayersBundles(t *testing.T) {
	s := newTestServer(t, nil)
	if _, err := s.LoadPages(fstest.MapFS{"index.html": {Data: []byte("v1")}}); err != nil {
		t.Fatal(err)
	}
	n, err := s.LoadPages(fstest.MapFS{
		"index.html": {Data: []byte("v2")},
		"new.html":   {Data: []byte("new")},
	})
	if err != nil || n != 2 {
		t.Fatalf("LoadPages = %d, %v", n, err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/index.html")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "v2" {
		t.Errorf("layered page = %q, want v2", body)
	}
}
