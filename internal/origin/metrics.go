package origin

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"oak/internal/core"
	"oak/internal/obs"
)

// Operator observability endpoints. Like AuditPath, these are
// operator-facing: restrict access to them in deployments.
const (
	// MetricsPath serves the engine's aggregate counters and latency
	// histograms as JSON.
	MetricsPath = "/oak/metrics"
	// HealthzPath serves a liveness summary (uptime, rule/user counts).
	HealthzPath = "/oak/healthz"
	// TracePath serves the most recent decision-trace events as JSON;
	// ?n=100 bounds the window (default 100).
	TracePath = "/oak/trace"
	// PopulationPath serves the population-detection state (degraded
	// providers, per-provider baselines, synthesis counters); 404 on
	// engines built without WithSynthesis.
	PopulationPath = "/oak/population"
)

// Versioned aliases of the operator endpoints (see V1Prefix in server.go).
const (
	MetricsPathV1    = V1Prefix + "/metrics"
	HealthzPathV1    = V1Prefix + "/healthz"
	TracePathV1      = V1Prefix + "/trace"
	PopulationPathV1 = V1Prefix + "/population"
)

// defaultTraceWindow is how many events GET /oak/trace returns when the
// request does not say.
const defaultTraceWindow = 100

// MetricsResponse is the GET /oak/metrics body.
type MetricsResponse struct {
	// Counters are the engine's monotone aggregate counters.
	Counters core.Metrics `json:"counters"`
	// Ingest and Rewrite summarise the hot-path latency histograms in
	// millisecond percentiles. Ingest merges all shards.
	Ingest  obs.Summary `json:"ingest"`
	Rewrite obs.Summary `json:"rewrite"`
	// IngestBuckets and RewriteBuckets are the raw populated histogram
	// buckets, for operators who want more than percentiles.
	IngestBuckets  []obs.Bucket `json:"ingest_buckets,omitempty"`
	RewriteBuckets []obs.Bucket `json:"rewrite_buckets,omitempty"`
	// Shards is how many lock-striped shards partition per-user state.
	Shards int `json:"shards"`
	// IngestShards summarises each shard's ingest histogram (indexed by
	// shard); shards that have ingested nothing are omitted. A shard whose
	// latencies stand out indicates a hot user population.
	IngestShards []ShardSummary `json:"ingest_shards,omitempty"`
	// IngestQueue describes the batched-ingest queue; absent when the
	// engine runs without a pipeline.
	IngestQueue *QueueStatus `json:"ingest_queue,omitempty"`
	// PagesDegraded counts page deliveries served unmodified because the
	// per-user rewrite did not finish within the rewrite budget.
	PagesDegraded uint64 `json:"pages_degraded"`
	// Rewrite-cache counters (all zero when the cache is disabled; see
	// core.WithRewriteCache). Bytes approximates resident cache memory.
	RewriteCacheHits      uint64 `json:"rewrite_cache_hits"`
	RewriteCacheMisses    uint64 `json:"rewrite_cache_misses"`
	RewriteCacheEvictions uint64 `json:"rewrite_cache_evictions"`
	RewriteCacheBytes     int64  `json:"rewrite_cache_bytes"`
	RewriteCacheEntries   int    `json:"rewrite_cache_entries"`
	// Guard is the circuit-breaker state (breakers, quarantined providers
	// and rules, canary counts); absent on engines built without WithGuard.
	Guard *core.GuardStatus `json:"guard,omitempty"`
	// Population is the population-detection state (degraded providers,
	// per-provider baselines, synthesis counters); absent on engines built
	// without WithSynthesis.
	Population *core.PopulationStatus `json:"population,omitempty"`
	// Spill is the profile spill tier's state (residency counts, segment
	// footprint, rehydration latency); absent on engines built without
	// core.WithProfileResidency.
	Spill *SpillSection `json:"spill,omitempty"`
}

// SpillSection is the spill-tier block of MetricsResponse: where the user
// population currently lives (resident vs spilled to disk segments), the
// tier's counters, and the rehydration latency digest.
type SpillSection struct {
	// MemoryOnly is true when a spill I/O failure latched the tier into
	// memory-only degraded mode: evictions have stopped, serving continues
	// with unbounded resident growth. Also reflected in healthz.
	MemoryOnly bool `json:"memory_only"`
	// ProfilesResident and ProfilesSpilled partition the known users by
	// where each profile currently lives.
	ProfilesResident int64 `json:"profiles_resident"`
	ProfilesSpilled  int64 `json:"profiles_spilled"`
	// ResidentBytes estimates the heap held by resident profiles (the
	// quantity a byte cap bounds); SpillBytes is the on-disk segment
	// footprint, dead records included until compaction.
	ResidentBytes int64 `json:"resident_bytes"`
	SpillBytes    int64 `json:"spill_bytes"`
	// Segments counts live segment files; QuarantinedSegments names the
	// files set aside after codec-level damage (see docs/OPERATIONS.md).
	Segments            int      `json:"segments"`
	QuarantinedSegments []string `json:"quarantined_segments,omitempty"`
	// Monotone counters: profiles evicted to disk, profiles read back,
	// segment rewrites, and spill-path failures of any kind.
	Spills             uint64 `json:"spills"`
	Rehydrations       uint64 `json:"rehydrations"`
	SegmentCompactions uint64 `json:"segment_compactions"`
	SpillErrors        uint64 `json:"spill_errors"`
	// The configured caps; zero when that cap is not set.
	MaxProfiles int   `json:"max_profiles,omitempty"`
	MaxBytes    int64 `json:"max_bytes,omitempty"`
	// Rehydrate summarises spill→memory rehydration latency in millisecond
	// percentiles; RehydrateNs is the raw populated histogram (nanosecond
	// bucket bounds), for operators who want more than percentiles.
	Rehydrate   obs.Summary  `json:"rehydrate"`
	RehydrateNs []obs.Bucket `json:"rehydrate_ns,omitempty"`
}

// ShardSummary is one shard's ingest latency digest.
type ShardSummary struct {
	Shard   int         `json:"shard"`
	Summary obs.Summary `json:"summary"`
}

// QueueStatus describes the batched-ingest queue.
type QueueStatus struct {
	// Depth is how many reports are queued or in flight right now.
	Depth int64 `json:"depth"`
	// Capacity is the total bound across worker queues; submissions block
	// (backpressure) when their worker's queue is full.
	Capacity int `json:"capacity"`
}

// HealthzResponse is the GET /oak/healthz body.
type HealthzResponse struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Rules         int     `json:"rules"`
	Users         int     `json:"users"`
	Reports       uint64  `json:"reports"`
	// OpenBreakers lists alternate providers currently quarantined by an
	// open guard breaker (omitted when none, or without WithGuard).
	OpenBreakers []string `json:"open_breakers,omitempty"`
	// DegradedProviders lists providers the population detector currently
	// flags (omitted when none, or without WithSynthesis).
	DegradedProviders []string `json:"degraded_providers,omitempty"`
	// StateSource says where the engine's state came from: "fresh",
	// "snapshot", "backup" (recovered from the rotating .bak), or
	// "shipped" (rehydrated from a snapshot shipped by another node).
	StateSource string `json:"state_source"`
	// StateRecoveries counts restores from somewhere other than the
	// primary snapshot file — backup fallbacks and shipped rehydrations.
	StateRecoveries uint64 `json:"state_recoveries"`
	// SpillDegraded is true when the profile spill tier is operating
	// impaired: a spill I/O failure latched memory-only mode, or a damaged
	// segment was quarantined. The process keeps serving either way; the
	// flag (and the "degraded" status it forces) tells operators resident
	// memory is no longer bounded or spilled profiles were set aside.
	// Omitted on engines without a residency cap.
	SpillDegraded bool `json:"spill_degraded,omitempty"`
	// SpillMemoryOnly narrows SpillDegraded: true when evictions have
	// stopped and the engine runs memory-only.
	SpillMemoryOnly bool `json:"spill_memory_only,omitempty"`
	// QuarantinedSegments counts spill segment files set aside after
	// codec-level damage.
	QuarantinedSegments int `json:"quarantined_segments,omitempty"`
}

// handleMetrics serves counters plus ingest/rewrite histograms.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !getOnly(w, r) {
		return
	}
	lat := s.engine.Latencies()
	resp := MetricsResponse{
		Counters:       s.engine.Metrics(),
		Ingest:         lat.Ingest.Summary(),
		Rewrite:        lat.Rewrite.Summary(),
		IngestBuckets:  lat.Ingest.Buckets,
		RewriteBuckets: lat.Rewrite.Buckets,
		Shards:         s.engine.ShardCount(),
		PagesDegraded:  s.pagesDegraded.Value(),
	}
	rc := s.engine.RewriteCacheStats()
	resp.RewriteCacheHits = rc.Hits
	resp.RewriteCacheMisses = rc.Misses
	resp.RewriteCacheEvictions = rc.Evictions
	resp.RewriteCacheBytes = rc.Bytes
	resp.RewriteCacheEntries = rc.Entries
	for i, snap := range lat.IngestShards {
		if snap.Count > 0 {
			resp.IngestShards = append(resp.IngestShards, ShardSummary{Shard: i, Summary: snap.Summary()})
		}
	}
	if depth, capacity := s.engine.IngestQueue(); capacity > 0 {
		resp.IngestQueue = &QueueStatus{Depth: depth, Capacity: capacity}
	}
	if gs, ok := s.engine.GuardStatus(); ok {
		resp.Guard = &gs
	}
	if ps, ok := s.engine.PopulationStatus(); ok {
		resp.Population = &ps
	}
	if ss, ok := s.engine.SpillStatus(); ok {
		resp.Spill = &SpillSection{
			MemoryOnly:          ss.MemoryOnly,
			ProfilesResident:    ss.ProfilesResident,
			ProfilesSpilled:     ss.ProfilesSpilled,
			ResidentBytes:       ss.ResidentBytes,
			SpillBytes:          ss.SpillBytes,
			Segments:            ss.Segments,
			QuarantinedSegments: ss.QuarantinedSegments,
			Spills:              ss.Spills,
			Rehydrations:        ss.Rehydrations,
			SegmentCompactions:  ss.SegmentCompactions,
			SpillErrors:         ss.SpillErrors,
			MaxProfiles:         ss.MaxProfiles,
			MaxBytes:            ss.MaxBytes,
			Rehydrate:           lat.Rehydrate.Summary(),
			RehydrateNs:         lat.Rehydrate.Buckets,
		}
	}
	writeJSON(w, resp)
}

// handlePopulation serves the population layer's full state. Engines built
// without WithSynthesis answer 404: the endpoint does not exist for them,
// exactly like the guard section is absent from guardless metrics.
func (s *Server) handlePopulation(w http.ResponseWriter, r *http.Request) {
	if !getOnly(w, r) {
		return
	}
	ps, ok := s.engine.PopulationStatus()
	if !ok {
		http.Error(w, "population detection not enabled", http.StatusNotFound)
		return
	}
	writeJSON(w, ps)
}

// handleHealthz serves the liveness summary. The status is "degraded" —
// still HTTP 200, the process is alive — while the ingest queue is
// saturated, so load balancers polling healthz see overload before clients
// start receiving 503s.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !getOnly(w, r) {
		return
	}
	status := "ok"
	if depth, capacity := s.engine.IngestQueue(); capacity > 0 && depth >= int64(capacity) {
		status = "degraded"
	}
	resp := HealthzResponse{
		UptimeSeconds:     time.Since(s.started).Seconds(),
		Rules:             len(s.engine.Rules()),
		Users:             s.engine.Users(),
		Reports:           s.engine.Metrics().ReportsHandled,
		OpenBreakers:      s.engine.OpenBreakers(),
		DegradedProviders: s.engine.DegradedProviders(),
	}
	if ss, ok := s.engine.SpillStatus(); ok {
		resp.SpillDegraded = s.engine.SpillDegraded()
		resp.SpillMemoryOnly = ss.MemoryOnly
		resp.QuarantinedSegments = len(ss.QuarantinedSegments)
		if resp.SpillDegraded {
			status = "degraded"
		}
	}
	src, recoveries := s.engine.StateStatus()
	resp.Status = status
	resp.StateSource = string(src)
	resp.StateRecoveries = recoveries
	writeJSON(w, resp)
}

// handleTrace serves the last n decision-trace events.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if !getOnly(w, r) {
		return
	}
	n := defaultTraceWindow
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			http.Error(w, "n must be a positive integer", http.StatusBadRequest)
			return
		}
		n = v
	}
	evs := s.engine.TraceRecent(n)
	if evs == nil {
		evs = []obs.Event{} // serve [] rather than null
	}
	writeJSON(w, evs)
}

// getOnly rejects non-GET methods.
func getOnly(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return false
	}
	return true
}

// writeJSON encodes v as indented JSON.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
