package origin

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"oak/internal/core"
	"oak/internal/obs"
)

// Operator observability endpoints. Like AuditPath, these are
// operator-facing: restrict access to them in deployments.
const (
	// MetricsPath serves the engine's aggregate counters and latency
	// histograms as JSON.
	MetricsPath = "/oak/metrics"
	// HealthzPath serves a liveness summary (uptime, rule/user counts).
	HealthzPath = "/oak/healthz"
	// TracePath serves the most recent decision-trace events as JSON;
	// ?n=100 bounds the window (default 100).
	TracePath = "/oak/trace"
	// PopulationPath serves the population-detection state (degraded
	// providers, per-provider baselines, synthesis counters); 404 on
	// engines built without WithSynthesis.
	PopulationPath = "/oak/population"
)

// Versioned aliases of the operator endpoints (see V1Prefix in server.go).
const (
	MetricsPathV1    = V1Prefix + "/metrics"
	HealthzPathV1    = V1Prefix + "/healthz"
	TracePathV1      = V1Prefix + "/trace"
	PopulationPathV1 = V1Prefix + "/population"
)

// defaultTraceWindow is how many events GET /oak/trace returns when the
// request does not say.
const defaultTraceWindow = 100

// MetricsResponse is the GET /oak/metrics body.
type MetricsResponse struct {
	// Counters are the engine's monotone aggregate counters.
	Counters core.Metrics `json:"counters"`
	// Ingest and Rewrite summarise the hot-path latency histograms in
	// millisecond percentiles. Ingest merges all shards.
	Ingest  obs.Summary `json:"ingest"`
	Rewrite obs.Summary `json:"rewrite"`
	// IngestBuckets and RewriteBuckets are the raw populated histogram
	// buckets, for operators who want more than percentiles.
	IngestBuckets  []obs.Bucket `json:"ingest_buckets,omitempty"`
	RewriteBuckets []obs.Bucket `json:"rewrite_buckets,omitempty"`
	// Shards is how many lock-striped shards partition per-user state.
	Shards int `json:"shards"`
	// IngestShards summarises each shard's ingest histogram (indexed by
	// shard); shards that have ingested nothing are omitted. A shard whose
	// latencies stand out indicates a hot user population.
	IngestShards []ShardSummary `json:"ingest_shards,omitempty"`
	// IngestQueue describes the batched-ingest queue; absent when the
	// engine runs without a pipeline.
	IngestQueue *QueueStatus `json:"ingest_queue,omitempty"`
	// PagesDegraded counts page deliveries served unmodified because the
	// per-user rewrite did not finish within the rewrite budget.
	PagesDegraded uint64 `json:"pages_degraded"`
	// Rewrite-cache counters (all zero when the cache is disabled; see
	// core.WithRewriteCache). Bytes approximates resident cache memory.
	RewriteCacheHits      uint64 `json:"rewrite_cache_hits"`
	RewriteCacheMisses    uint64 `json:"rewrite_cache_misses"`
	RewriteCacheEvictions uint64 `json:"rewrite_cache_evictions"`
	RewriteCacheBytes     int64  `json:"rewrite_cache_bytes"`
	RewriteCacheEntries   int    `json:"rewrite_cache_entries"`
	// Guard is the circuit-breaker state (breakers, quarantined providers
	// and rules, canary counts); absent on engines built without WithGuard.
	Guard *core.GuardStatus `json:"guard,omitempty"`
	// Population is the population-detection state (degraded providers,
	// per-provider baselines, synthesis counters); absent on engines built
	// without WithSynthesis.
	Population *core.PopulationStatus `json:"population,omitempty"`
}

// ShardSummary is one shard's ingest latency digest.
type ShardSummary struct {
	Shard   int         `json:"shard"`
	Summary obs.Summary `json:"summary"`
}

// QueueStatus describes the batched-ingest queue.
type QueueStatus struct {
	// Depth is how many reports are queued or in flight right now.
	Depth int64 `json:"depth"`
	// Capacity is the total bound across worker queues; submissions block
	// (backpressure) when their worker's queue is full.
	Capacity int `json:"capacity"`
}

// HealthzResponse is the GET /oak/healthz body.
type HealthzResponse struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Rules         int     `json:"rules"`
	Users         int     `json:"users"`
	Reports       uint64  `json:"reports"`
	// OpenBreakers lists alternate providers currently quarantined by an
	// open guard breaker (omitted when none, or without WithGuard).
	OpenBreakers []string `json:"open_breakers,omitempty"`
	// DegradedProviders lists providers the population detector currently
	// flags (omitted when none, or without WithSynthesis).
	DegradedProviders []string `json:"degraded_providers,omitempty"`
	// StateSource says where the engine's state came from: "fresh",
	// "snapshot", "backup" (recovered from the rotating .bak), or
	// "shipped" (rehydrated from a snapshot shipped by another node).
	StateSource string `json:"state_source"`
	// StateRecoveries counts restores from somewhere other than the
	// primary snapshot file — backup fallbacks and shipped rehydrations.
	StateRecoveries uint64 `json:"state_recoveries"`
}

// handleMetrics serves counters plus ingest/rewrite histograms.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !getOnly(w, r) {
		return
	}
	lat := s.engine.Latencies()
	resp := MetricsResponse{
		Counters:       s.engine.Metrics(),
		Ingest:         lat.Ingest.Summary(),
		Rewrite:        lat.Rewrite.Summary(),
		IngestBuckets:  lat.Ingest.Buckets,
		RewriteBuckets: lat.Rewrite.Buckets,
		Shards:         s.engine.ShardCount(),
		PagesDegraded:  s.pagesDegraded.Value(),
	}
	rc := s.engine.RewriteCacheStats()
	resp.RewriteCacheHits = rc.Hits
	resp.RewriteCacheMisses = rc.Misses
	resp.RewriteCacheEvictions = rc.Evictions
	resp.RewriteCacheBytes = rc.Bytes
	resp.RewriteCacheEntries = rc.Entries
	for i, snap := range lat.IngestShards {
		if snap.Count > 0 {
			resp.IngestShards = append(resp.IngestShards, ShardSummary{Shard: i, Summary: snap.Summary()})
		}
	}
	if depth, capacity := s.engine.IngestQueue(); capacity > 0 {
		resp.IngestQueue = &QueueStatus{Depth: depth, Capacity: capacity}
	}
	if gs, ok := s.engine.GuardStatus(); ok {
		resp.Guard = &gs
	}
	if ps, ok := s.engine.PopulationStatus(); ok {
		resp.Population = &ps
	}
	writeJSON(w, resp)
}

// handlePopulation serves the population layer's full state. Engines built
// without WithSynthesis answer 404: the endpoint does not exist for them,
// exactly like the guard section is absent from guardless metrics.
func (s *Server) handlePopulation(w http.ResponseWriter, r *http.Request) {
	if !getOnly(w, r) {
		return
	}
	ps, ok := s.engine.PopulationStatus()
	if !ok {
		http.Error(w, "population detection not enabled", http.StatusNotFound)
		return
	}
	writeJSON(w, ps)
}

// handleHealthz serves the liveness summary. The status is "degraded" —
// still HTTP 200, the process is alive — while the ingest queue is
// saturated, so load balancers polling healthz see overload before clients
// start receiving 503s.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !getOnly(w, r) {
		return
	}
	status := "ok"
	if depth, capacity := s.engine.IngestQueue(); capacity > 0 && depth >= int64(capacity) {
		status = "degraded"
	}
	src, recoveries := s.engine.StateStatus()
	writeJSON(w, HealthzResponse{
		Status:            status,
		UptimeSeconds:     time.Since(s.started).Seconds(),
		Rules:             len(s.engine.Rules()),
		Users:             s.engine.Users(),
		Reports:           s.engine.Metrics().ReportsHandled,
		OpenBreakers:      s.engine.OpenBreakers(),
		DegradedProviders: s.engine.DegradedProviders(),
		StateSource:       string(src),
		StateRecoveries:   recoveries,
	})
}

// handleTrace serves the last n decision-trace events.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if !getOnly(w, r) {
		return
	}
	n := defaultTraceWindow
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			http.Error(w, "n must be a positive integer", http.StatusBadRequest)
			return
		}
		n = v
	}
	evs := s.engine.TraceRecent(n)
	if evs == nil {
		evs = []obs.Event{} // serve [] rather than null
	}
	writeJSON(w, evs)
}

// getOnly rejects non-GET methods.
func getOnly(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return false
	}
	return true
}

// writeJSON encodes v as indented JSON.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
