package origin

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"oak/internal/core"
	"oak/internal/report"
	"oak/internal/rules"
)

// loaderRule references lib.example's loader script but not the violator, so
// matching requires fetching the script — the hook tests use to wedge the
// engine deterministically.
func loaderRule() *rules.Rule {
	return &rules.Rule{
		ID:      "loader",
		Type:    rules.TypeRemove,
		Default: `<script src="http://lib.example/loader.js"></script>`,
		Scope:   "*",
	}
}

// tier3ReportJSON is a report whose violator can only be matched through the
// external-JavaScript tier: processing it calls the script fetcher.
func tier3ReportJSON(t *testing.T, user string) string {
	t.Helper()
	rep := &report.Report{UserID: user, Page: "/index.html", Entries: []report.Entry{
		{URL: "http://lib.example/loader.js", ServerAddr: "ip-lib.example", SizeBytes: 1024, DurationMillis: 95, Kind: report.KindScript},
		{URL: "http://evil.example/pixel.png", ServerAddr: "ip-evil.example", SizeBytes: 1024, DurationMillis: 2000, Kind: report.KindImage},
		{URL: "http://a.example/a.png", ServerAddr: "ip-a.example", SizeBytes: 1024, DurationMillis: 100, Kind: report.KindImage},
		{URL: "http://b.example/b.png", ServerAddr: "ip-b.example", SizeBytes: 1024, DurationMillis: 110, Kind: report.KindImage},
	}}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// plainReportJSON is an ordinary valid report for user.
func plainReportJSON(t *testing.T, user string) string {
	t.Helper()
	rep := &report.Report{UserID: user, Page: "/index.html", Entries: []report.Entry{
		{URL: "http://s1.com/x.js", ServerAddr: "ip-s1.com", SizeBytes: 1024, DurationMillis: 2000},
		{URL: "http://a.example/a.png", ServerAddr: "ip-a.example", SizeBytes: 1024, DurationMillis: 100},
		{URL: "http://b.example/b.png", ServerAddr: "ip-b.example", SizeBytes: 1024, DurationMillis: 110},
		{URL: "http://c.example/c.png", ServerAddr: "ip-c.example", SizeBytes: 1024, DurationMillis: 95},
	}}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

// saturatedServer builds a server whose single ingest worker is blocked
// inside the script fetcher and whose one-slot queue is full, so every
// further submission sheds. The returned release unwedges the worker; the
// engine is cleaned up by t.Cleanup.
func saturatedServer(t *testing.T) (*Server, func()) {
	t.Helper()
	entered := make(chan struct{})
	release := make(chan struct{})
	fetcher := core.ScriptFetcherFunc(func(string) (string, error) {
		close(entered)
		<-release
		return "", nil
	})
	engine, err := core.NewEngine([]*rules.Rule{loaderRule()},
		core.WithScriptFetcher(fetcher),
		core.WithIngestPipeline(core.IngestConfig{Workers: 1, QueueLen: 1}),
		core.WithLoadShedding(core.ShedPolicy{MaxWait: 5 * time.Millisecond, RetryAfter: 2 * time.Second}),
	)
	if err != nil {
		t.Fatal(err)
	}
	released := false
	doRelease := func() {
		if !released {
			released = true
			close(release)
		}
	}
	t.Cleanup(func() {
		doRelease()
		engine.Close()
	})

	blocker, err := report.Unmarshal([]byte(tier3ReportJSON(t, "u-block")))
	if err != nil {
		t.Fatal(err)
	}
	filler, err := report.Unmarshal([]byte(plainReportJSON(t, "u-fill")))
	if err != nil {
		t.Fatal(err)
	}
	go func() { _, _ = engine.HandleReport(blocker) }()
	<-entered
	go func() { _, _ = engine.HandleReport(filler) }()
	waitFor(t, func() bool { depth, _ := engine.IngestQueue(); return depth == 2 })

	return NewServer(engine), doRelease
}

func TestReportOverloadReturns503WithRetryAfter(t *testing.T) {
	s, _ := saturatedServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Post(ts.URL+ReportPath, "application/json",
		strings.NewReader(plainReportJSON(t, "u-new")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", got)
	}
	if s.Engine().Metrics().ReportsShed == 0 {
		t.Error("shed not counted in metrics")
	}
}

func TestBatchAllShedReturns503WithRetryAfter(t *testing.T) {
	s, _ := saturatedServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	body := plainReportJSON(t, "b1") + "\n" + plainReportJSON(t, "b2") + "\n"
	resp, err := http.Post(ts.URL+ReportPath, BatchContentType, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got == "" {
		t.Error("no Retry-After on all-shed batch")
	}
	var res core.BatchResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Overloaded != 2 || res.Processed != 0 {
		t.Errorf("batch result = %+v, want 2 overloaded, 0 processed", res)
	}
}

func TestHealthzDegradedWhileSaturated(t *testing.T) {
	s, release := saturatedServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	get := func() string {
		resp, err := http.Get(ts.URL + HealthzPath)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var hz HealthzResponse
		if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
			t.Fatal(err)
		}
		return hz.Status
	}
	if got := get(); got != "degraded" {
		t.Errorf("healthz while saturated = %q, want degraded", got)
	}
	release()
	waitFor(t, func() bool { depth, _ := s.Engine().IngestQueue(); return depth == 0 })
	if got := get(); got != "ok" {
		t.Errorf("healthz after drain = %q, want ok", got)
	}
}

func TestReportShutdownReturns503(t *testing.T) {
	engine, err := core.NewEngine(nil,
		core.WithIngestPipeline(core.IngestConfig{Workers: 1, QueueLen: 4}))
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.Close(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(engine))
	defer ts.Close()

	resp, err := http.Post(ts.URL+ReportPath, "application/json",
		strings.NewReader(plainReportJSON(t, "late")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("no Retry-After on shutdown 503")
	}
}

func TestReportMalformedReturns400(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	for _, body := range []string{"{not json", `{"userId":"u","page":"/","entries":[]}`} {
		resp, err := http.Post(ts.URL+ReportPath, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %q status = %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestWriteIngestErrorMapping(t *testing.T) {
	s := newTestServer(t, nil)
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"overload", &core.OverloadError{RetryAfter: time.Second}, http.StatusServiceUnavailable},
		{"overload sentinel", core.ErrOverloaded, http.StatusServiceUnavailable},
		{"shutdown", core.ErrShuttingDown, http.StatusServiceUnavailable},
		{"canceled", context.Canceled, StatusClientClosedRequest},
		{"deadline", context.DeadlineExceeded, StatusClientClosedRequest},
		{"wrapped cancel", errors.Join(errors.New("while queued"), context.Canceled), StatusClientClosedRequest},
		{"validation", report.ErrNoEntries, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			s.writeIngestError(rec, tc.err)
			if rec.Code != tc.want {
				t.Errorf("status = %d, want %d", rec.Code, tc.want)
			}
			if tc.want == http.StatusServiceUnavailable && rec.Header().Get("Retry-After") == "" {
				t.Error("503 without Retry-After")
			}
		})
	}
}

func TestPageServedUnmodifiedWhenRewriteBudgetLapses(t *testing.T) {
	// A synchronous engine processes reports on the caller's goroutine while
	// holding the user's shard lock; a blocked fetcher therefore wedges that
	// shard — exactly the state page delivery must survive.
	entered := make(chan struct{})
	release := make(chan struct{})
	fetcher := core.ScriptFetcherFunc(func(string) (string, error) {
		close(entered)
		<-release
		return "", nil
	})
	engine, err := core.NewEngine([]*rules.Rule{loaderRule()}, core.WithScriptFetcher(fetcher))
	if err != nil {
		t.Fatal(err)
	}
	defer close(release)

	s := NewServer(engine, WithRewriteBudget(30*time.Millisecond))
	const page = "<html><body>original</body></html>"
	s.SetPage("/index.html", page)
	ts := httptest.NewServer(s)
	defer ts.Close()

	blocker, err := report.Unmarshal([]byte(tier3ReportJSON(t, "wedged-user")))
	if err != nil {
		t.Fatal(err)
	}
	go func() { _, _ = engine.HandleReport(blocker) }()
	<-entered

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/index.html", nil)
	req.AddCookie(&http.Cookie{Name: CookieName, Value: "wedged-user"})
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d, want 200 while engine is wedged", resp.StatusCode)
	}
	if string(body) != page {
		t.Errorf("body = %q, want the unmodified page", body)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("page delivery took %v; rewrite budget not applied", elapsed)
	}
	if got := s.PagesDegraded(); got != 1 {
		t.Errorf("PagesDegraded = %d, want 1", got)
	}

	// The degraded delivery shows up on the metrics endpoint.
	mresp, err := http.Get(ts.URL + MetricsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var m MetricsResponse
	if err := json.NewDecoder(mresp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.PagesDegraded != 1 {
		t.Errorf("metrics pages_degraded = %d, want 1", m.PagesDegraded)
	}
}
