package origin

import (
	"net/http"
	"strconv"
	"sync"
	"time"
)

// ContentServer is a configurable external content server: it serves
// fixed-size binary objects and script bodies, with an adjustable artificial
// response delay so tests and examples can degrade a provider on demand —
// the loopback equivalent of the paper's delay-injection experiments.
type ContentServer struct {
	mu      sync.RWMutex
	objects map[string]int    // path -> size in bytes
	scripts map[string]string // path -> body
	delay   time.Duration
}

var _ http.Handler = (*ContentServer)(nil)

// NewContentServer returns an empty content server.
func NewContentServer() *ContentServer {
	return &ContentServer{
		objects: make(map[string]int),
		scripts: make(map[string]string),
	}
}

// AddObject registers a binary object of the given size.
func (s *ContentServer) AddObject(path string, size int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.objects[path] = size
}

// AddScript registers a JavaScript body.
func (s *ContentServer) AddScript(path, body string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.scripts[path] = body
}

// SetDelay sets the artificial per-request delay.
func (s *ContentServer) SetDelay(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.delay = d
}

// Delay returns the current artificial delay.
func (s *ContentServer) Delay() time.Duration {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.delay
}

// ServeHTTP serves the object or script at the request path after the
// configured delay.
func (s *ContentServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	delay := s.delay
	body, isScript := s.scripts[r.URL.Path]
	size, isObject := s.objects[r.URL.Path]
	s.mu.RUnlock()

	if delay > 0 {
		time.Sleep(delay)
	}
	switch {
	case isScript:
		w.Header().Set("Content-Type", "application/javascript")
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		_, _ = w.Write([]byte(body))
	case isObject:
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.Itoa(size))
		_, _ = w.Write(make([]byte, size))
	default:
		http.NotFound(w, r)
	}
}
