package origin

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"mime"
	"net/http"

	"oak/internal/core"
	"oak/internal/report"
)

// Batch ingestion: POST /oak/report with Content-Type application/x-ndjson
// carries one JSON report per line; application/x-oak-report-batch carries
// concatenated OAKRPT1 frames (see report/binary.go). Either way the body is
// streamed — each report is handed to the engine as soon as its bytes are
// parsed, through a core.BatchSink, so a batch is never materialised as a
// slice of reports. The batch is fanned out across the engine's shards
// (through the batched-ingest pipeline when one is configured), and the
// response summarises how many reports were processed and how many failed —
// a batch is not transactional, so one malformed line does not reject the
// rest.

// BatchContentType is the canonical Content-Type marking a POST body on
// ReportPath as an NDJSON batch. The aliases application/ndjson and
// application/jsonl are also accepted.
const BatchContentType = "application/x-ndjson"

// batchParseErrorCap bounds how many parse-error samples the response
// carries; past it, failures are counted but their messages are not even
// rendered.
const batchParseErrorCap = 4

// isBatchContentType reports whether the Content-Type header marks an
// NDJSON batch body.
func isBatchContentType(ct string) bool {
	if ct == "" {
		return false
	}
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil {
		return false
	}
	switch mt {
	case BatchContentType, "application/ndjson", "application/jsonl":
		return true
	}
	return false
}

// isBinaryContentType reports whether the Content-Type header marks a
// single OAKRPT1 report body.
func isBinaryContentType(ct string) bool {
	if ct == "" {
		return false
	}
	mt, _, err := mime.ParseMediaType(ct)
	return err == nil && mt == report.ContentTypeBinary
}

// isBinaryBatchContentType reports whether the Content-Type header marks a
// body of concatenated OAKRPT1 batch frames.
func isBinaryBatchContentType(ct string) bool {
	if ct == "" {
		return false
	}
	mt, _, err := mime.ParseMediaType(ct)
	return err == nil && mt == report.ContentTypeBinaryBatch
}

// batchParseFailures tracks reports that never reached the engine because
// their bytes would not parse.
type batchParseFailures struct {
	count int
	errs  []string
}

// add counts one parse failure, keeping at most batchParseErrorCap distinct
// sample messages (and not rendering the error at all once capped).
func (p *batchParseFailures) add(err error) {
	p.count++
	if len(p.errs) >= batchParseErrorCap {
		return
	}
	msg := err.Error()
	for _, prev := range p.errs {
		if prev == msg {
			return
		}
	}
	p.errs = append(p.errs, msg)
}

// handleReportBatch ingests an NDJSON batch body: one report per line,
// blank lines skipped, each line streamed into the engine as soon as it is
// parsed. Each line is bounded by the single-report body limit; the whole
// body by batchBodyFactor times that. The response is a JSON
// core.BatchResult; reports that fail to parse are counted as failed
// alongside reports the engine rejected.
func (s *Server) handleReportBatch(w http.ResponseWriter, r *http.Request) {
	body := &countingReader{r: io.LimitReader(r.Body, batchBodyFactor*s.maxBodyBytes+1)}
	sink := s.engine.StartBatch(r.Context())
	var parse batchParseFailures

	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 64*1024), int(s.maxBodyBytes)+1)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if int64(len(line)) > s.maxBodyBytes {
			sink.Wait()
			http.Error(w, "batch line exceeds report size limit", http.StatusRequestEntityTooLarge)
			return
		}
		rep, err := report.DecodePooled(line)
		if err != nil {
			parse.add(err)
			continue
		}
		s.stampIdentity(rep, r)
		sink.Submit(rep)
	}
	if err := sc.Err(); err != nil {
		sink.Wait()
		if err == bufio.ErrTooLong {
			http.Error(w, "batch line exceeds report size limit", http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "read body", http.StatusBadRequest)
		return
	}
	if body.n > batchBodyFactor*s.maxBodyBytes {
		sink.Wait()
		http.Error(w, "batch too large", http.StatusRequestEntityTooLarge)
		return
	}
	s.finishBatch(w, r, sink.Wait(), &parse)
}

// handleReportBatchBinary ingests a body of concatenated OAKRPT1 frames,
// streaming each frame's report into the engine as it is sliced off. A
// framing error is unrecoverable (the stream cannot resync), so it fails
// the remainder as one parse failure; a frame whose payload will not decode
// fails alone, like a malformed NDJSON line.
func (s *Server) handleReportBatchBinary(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, batchBodyFactor*s.maxBodyBytes+1))
	if err != nil {
		http.Error(w, "read body", http.StatusBadRequest)
		return
	}
	if int64(len(body)) > batchBodyFactor*s.maxBodyBytes {
		http.Error(w, "batch too large", http.StatusRequestEntityTooLarge)
		return
	}
	sink := s.engine.StartBatch(r.Context())
	var parse batchParseFailures
	for rest := body; ; {
		frame, next, ferr := report.NextBinaryFrame(rest)
		if ferr != nil {
			parse.add(ferr)
			break
		}
		if frame == nil {
			break
		}
		rest = next
		if int64(len(frame)) > s.maxBodyBytes {
			sink.Wait()
			http.Error(w, "batch frame exceeds report size limit", http.StatusRequestEntityTooLarge)
			return
		}
		rep, derr := report.DecodeBinaryPooled(frame)
		if derr != nil {
			parse.add(derr)
			continue
		}
		s.stampIdentity(rep, r)
		sink.Submit(rep)
	}
	s.finishBatch(w, r, sink.Wait(), &parse)
}

// finishBatch folds parse failures into the engine's batch summary and
// writes the response: 400 for an empty batch, 499 when the client left,
// 503 + Retry-After when the shedding policy refused the whole batch, 200
// with the summary otherwise.
func (s *Server) finishBatch(w http.ResponseWriter, r *http.Request, res core.BatchResult, parse *batchParseFailures) {
	if res.Submitted == 0 && parse.count == 0 {
		http.Error(w, "empty batch", http.StatusBadRequest)
		return
	}
	allShed := res.Overloaded > 0 && res.Processed == 0 && res.Overloaded == res.Failed
	res.Submitted += parse.count
	res.Failed += parse.count
	res.Errors = append(res.Errors, parse.errs...)
	if err := r.Context().Err(); err != nil {
		// The client abandoned the batch; whatever was processed before the
		// abort took effect, but nobody is listening for the summary.
		w.WriteHeader(StatusClientClosedRequest)
		return
	}
	if res.Overloaded > 0 {
		// Some (or all) reports were shed: advertise when to retry them.
		w.Header().Set("Retry-After", retryAfterSeconds(core.DefaultRetryAfter))
	}
	if allShed {
		// Nothing was admitted — the batch as a whole was refused, which is
		// a server state, not a client mistake.
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.WriteHeader(http.StatusServiceUnavailable)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(res)
		return
	}
	writeJSON(w, res)
}

// countingReader counts bytes read through it, so the batch handler can
// tell a body that exactly fills the limit from one that overflows it.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
