package origin

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"mime"
	"net/http"

	"oak/internal/core"
	"oak/internal/report"
)

// NDJSON batch ingestion: POST /oak/report with Content-Type
// application/x-ndjson carries one JSON report per line. The batch is
// fanned out across the engine's shards (through the batched-ingest
// pipeline when one is configured), and the response summarises how many
// reports were processed and how many failed — a batch is not transactional,
// so one malformed line does not reject the rest.

// BatchContentType is the canonical Content-Type marking a POST body on
// ReportPath as an NDJSON batch. The aliases application/ndjson and
// application/jsonl are also accepted.
const BatchContentType = "application/x-ndjson"

// isBatchContentType reports whether the Content-Type header marks an
// NDJSON batch body.
func isBatchContentType(ct string) bool {
	if ct == "" {
		return false
	}
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil {
		return false
	}
	switch mt {
	case BatchContentType, "application/ndjson", "application/jsonl":
		return true
	}
	return false
}

// handleReportBatch ingests an NDJSON batch body: one report per line,
// blank lines skipped. Each line is bounded by the single-report body
// limit; the whole body by batchBodyFactor times that. The response is a
// JSON core.BatchResult; reports that fail to parse are counted as failed
// alongside reports the engine rejected.
func (s *Server) handleReportBatch(w http.ResponseWriter, r *http.Request) {
	body := &countingReader{r: io.LimitReader(r.Body, batchBodyFactor*s.maxBodyBytes+1)}
	var (
		reports   []*report.Report
		parseFail int
		parseErrs []string
	)
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 64*1024), int(s.maxBodyBytes)+1)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if int64(len(line)) > s.maxBodyBytes {
			http.Error(w, "batch line exceeds report size limit", http.StatusRequestEntityTooLarge)
			return
		}
		rep, err := report.Unmarshal(line)
		if err != nil {
			parseFail++
			if len(parseErrs) < 4 {
				parseErrs = append(parseErrs, err.Error())
			}
			continue
		}
		s.stampIdentity(rep, r)
		reports = append(reports, rep)
	}
	if err := sc.Err(); err != nil {
		if err == bufio.ErrTooLong {
			http.Error(w, "batch line exceeds report size limit", http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "read body", http.StatusBadRequest)
		return
	}
	if body.n > batchBodyFactor*s.maxBodyBytes {
		http.Error(w, "batch too large", http.StatusRequestEntityTooLarge)
		return
	}
	if len(reports) == 0 && parseFail == 0 {
		http.Error(w, "empty batch", http.StatusBadRequest)
		return
	}

	res := s.engine.HandleBatch(r.Context(), reports)
	allShed := res.Overloaded > 0 && res.Processed == 0 && res.Overloaded == res.Failed
	res.Submitted += parseFail
	res.Failed += parseFail
	for _, msg := range parseErrs {
		res.Errors = append(res.Errors, msg)
	}
	if err := r.Context().Err(); err != nil {
		// The client abandoned the batch; whatever was processed before the
		// abort took effect, but nobody is listening for the summary.
		w.WriteHeader(StatusClientClosedRequest)
		return
	}
	if res.Overloaded > 0 {
		// Some (or all) reports were shed: advertise when to retry them.
		w.Header().Set("Retry-After", retryAfterSeconds(core.DefaultRetryAfter))
	}
	if allShed {
		// Nothing was admitted — the batch as a whole was refused, which is
		// a server state, not a client mistake.
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.WriteHeader(http.StatusServiceUnavailable)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(res)
		return
	}
	writeJSON(w, res)
}

// countingReader counts bytes read through it, so the batch handler can
// tell a body that exactly fills the limit from one that overflows it.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
