package origin

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"oak/internal/core"
	"oak/internal/rules"
)

// getPageAs fetches path as the given user and returns body + response.
func getPageAs(t *testing.T, tsURL, path, user string) (string, *http.Response) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, tsURL+path, nil)
	req.AddCookie(&http.Cookie{Name: CookieName, Value: user})
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp
}

// TestServeRewriteCacheEndToEnd drives page serving through the cached fast
// path and checks the /oak/metrics counters and the precomputed
// X-Oak-Alternate header survive caching.
func TestServeRewriteCacheEndToEnd(t *testing.T) {
	engine, err := core.NewEngine([]*rules.Rule{swapRule()}, core.WithRewriteCache(64))
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(engine)
	srv.SetPage("/index.html", `<html><img src="http://slow.example/x.png"></html>`)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	postReport(t, ts.URL, "u1")

	var first, firstResp = getPageAs(t, ts.URL, "/index.html", "u1")
	if !strings.Contains(first, "fast.example") {
		t.Fatalf("page not rewritten: %q", first)
	}
	wantHint := "http://slow.example/x.png=http://fast.example/x.png"
	if h := firstResp.Header.Get(rules.CacheHintHeader); h != wantHint {
		t.Fatalf("first %s = %q, want %q", rules.CacheHintHeader, h, wantHint)
	}

	// Repeat requests must serve identical bytes and headers from cache.
	for i := 0; i < 3; i++ {
		body, resp := getPageAs(t, ts.URL, "/index.html", "u1")
		if body != first {
			t.Fatalf("cached serve diverged: %q vs %q", body, first)
		}
		if h := resp.Header.Get(rules.CacheHintHeader); h != wantHint {
			t.Fatalf("cached %s = %q, want %q", rules.CacheHintHeader, h, wantHint)
		}
	}

	var m MetricsResponse
	getJSON(t, ts.URL+MetricsPath, &m)
	if m.RewriteCacheHits == 0 {
		t.Errorf("rewrite_cache_hits = 0 after repeat serves; metrics = %+v", m)
	}
	if m.RewriteCacheMisses == 0 {
		t.Error("rewrite_cache_misses = 0, want at least the first computation")
	}
	if m.RewriteCacheEntries == 0 || m.RewriteCacheBytes <= 0 {
		t.Errorf("cache occupancy missing from metrics: entries=%d bytes=%d",
			m.RewriteCacheEntries, m.RewriteCacheBytes)
	}

	// A registry change flushes the cache.
	srv.SetPage("/index.html", `<html><p>new content, nothing to rewrite</p></html>`)
	getJSON(t, ts.URL+MetricsPath, &m)
	if m.RewriteCacheEntries != 0 || m.RewriteCacheBytes != 0 {
		t.Errorf("cache not flushed on SetPage: entries=%d bytes=%d",
			m.RewriteCacheEntries, m.RewriteCacheBytes)
	}
	body, _ := getPageAs(t, ts.URL, "/index.html", "u1")
	if !strings.Contains(body, "new content") {
		t.Errorf("stale page served after registry change: %q", body)
	}
}

// TestServeRewriteCacheDisabledIdentical serves the same traffic with and
// without the cache and requires identical bytes and headers (acceptance:
// -rewrite-cache 0 behaves exactly like today).
func TestServeRewriteCacheDisabledIdentical(t *testing.T) {
	page := `<html><img src="http://slow.example/x.png"></html>`
	build := func(cacheEntries int) (*httptest.Server, func()) {
		engine, err := core.NewEngine([]*rules.Rule{swapRule()}, core.WithRewriteCache(cacheEntries))
		if err != nil {
			t.Fatal(err)
		}
		srv := NewServer(engine)
		srv.SetPage("/index.html", page)
		ts := httptest.NewServer(srv)
		return ts, ts.Close
	}
	cached, closeCached := build(64)
	defer closeCached()
	plain, closePlain := build(0)
	defer closePlain()

	postReport(t, cached.URL, "u1")
	postReport(t, plain.URL, "u1")
	for i := 0; i < 3; i++ {
		a, ra := getPageAs(t, cached.URL, "/index.html", "u1")
		b, rb := getPageAs(t, plain.URL, "/index.html", "u1")
		if a != b {
			t.Fatalf("pass %d: cached body %q != plain body %q", i, a, b)
		}
		if ha, hb := ra.Header.Get(rules.CacheHintHeader), rb.Header.Get(rules.CacheHintHeader); ha != hb {
			t.Fatalf("pass %d: hint %q != %q", i, ha, hb)
		}
	}
	var m MetricsResponse
	getJSON(t, plain.URL+MetricsPath, &m)
	if m.RewriteCacheHits != 0 || m.RewriteCacheMisses != 0 || m.RewriteCacheEntries != 0 {
		t.Errorf("disabled cache reported activity: %+v", m)
	}
}
