package origin

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"oak/internal/client"
	"oak/internal/core"
	"oak/internal/rules"
)

// integrationWorld wires a full loopback Oak deployment: an Oak-fronted
// origin, N external content servers (one per logical host), and a resolver
// that maps logical hostnames to the loopback listeners.
type integrationWorld struct {
	origin   *httptest.Server
	oak      *Server
	content  map[string]*ContentServer   // logical host -> handler
	backends map[string]*httptest.Server // logical host -> listener
}

func (w *integrationWorld) resolve(host string) (string, bool) {
	ts, ok := w.backends[host]
	if !ok {
		return "", false
	}
	u, err := url.Parse(ts.URL)
	if err != nil {
		return "", false
	}
	return u.Host, true
}

func (w *integrationWorld) close() {
	w.origin.Close()
	for _, ts := range w.backends {
		ts.Close()
	}
}

// newIntegrationWorld builds a page with one object per logical host, plus
// an alternate host mirroring the first host's object, and a Type 2 rule
// switching between them.
func newIntegrationWorld(t *testing.T, hosts []string, altHost string, policy core.Policy) *integrationWorld {
	t.Helper()
	w := &integrationWorld{
		content:  make(map[string]*ContentServer),
		backends: make(map[string]*httptest.Server),
	}
	var tags []string
	for _, h := range append(append([]string(nil), hosts...), altHost) {
		cs := NewContentServer()
		cs.AddObject("/obj.bin", 8*1024)
		w.content[h] = cs
		w.backends[h] = httptest.NewServer(cs)
	}
	for _, h := range hosts {
		tags = append(tags, fmt.Sprintf("<img src=%q>", "http://"+h+"/obj.bin"))
	}
	html := "<html><body>\n" + strings.Join(tags, "\n") + "\n</body></html>"

	rule := &rules.Rule{
		ID:           "swap-" + hosts[0],
		Type:         rules.TypeReplaceSame,
		Default:      fmt.Sprintf("<img src=%q>", "http://"+hosts[0]+"/obj.bin"),
		Alternatives: []string{fmt.Sprintf("<img src=%q>", "http://"+altHost+"/obj.bin")},
		Scope:        "*",
	}
	engine, err := core.NewEngine([]*rules.Rule{rule}, core.WithPolicy(policy))
	if err != nil {
		t.Fatal(err)
	}
	w.oak = NewServer(engine)
	w.oak.SetPage("/index.html", html)
	w.origin = httptest.NewServer(w.oak)
	return w
}

// TestEndToEndSwitchover reproduces the core Oak loop over real HTTP: a
// degraded provider is detected from the client's own report and the next
// page load is steered to the alternate.
func TestEndToEndSwitchover(t *testing.T) {
	hosts := []string{"slow.example", "h2.example", "h3.example", "h4.example", "h5.example"}
	w := newIntegrationWorld(t, hosts, "alt.example", core.Policy{})
	defer w.close()

	// Degrade the first provider hard (loopback baseline is ~sub-ms).
	w.content["slow.example"].SetDelay(150 * time.Millisecond)

	c := &client.HTTPClient{Resolve: w.resolve}

	// Load 1: default page; the report exposes the violator.
	res1, html1, err := c.LoadAndReport(w.origin.URL, "/index.html")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(html1, "slow.example") {
		t.Fatal("first load should serve the default page")
	}
	if res1.PLT < 100*time.Millisecond {
		t.Fatalf("PLT %v does not reflect the injected delay", res1.PLT)
	}

	// Load 2: Oak must have activated the rule for this user.
	res2, html2, err := c.LoadAndReport(w.origin.URL, "/index.html")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(html2, "slow.example") {
		t.Error("second load still references the degraded provider")
	}
	if !strings.Contains(html2, "alt.example") {
		t.Error("second load does not reference the alternate")
	}
	if res2.PLT > res1.PLT {
		t.Errorf("PLT got worse after switch: %v -> %v", res1.PLT, res2.PLT)
	}

	snap, ok := w.oak.Engine().Snapshot(c.UserID)
	if !ok || len(snap.ActiveRules) != 1 {
		t.Errorf("engine snapshot = %+v, want one active rule", snap)
	}
}

// TestEndToEndCacheHintHeader checks the Type 2 cache hint of Section 4.3
// arrives on the rewritten page response.
func TestEndToEndCacheHintHeader(t *testing.T) {
	hosts := []string{"slow.example", "h2.example", "h3.example", "h4.example", "h5.example"}
	w := newIntegrationWorld(t, hosts, "alt.example", core.Policy{})
	defer w.close()
	w.content["slow.example"].SetDelay(150 * time.Millisecond)

	c := &client.HTTPClient{Resolve: w.resolve}
	if _, _, err := c.LoadAndReport(w.origin.URL, "/index.html"); err != nil {
		t.Fatal(err)
	}

	// Fetch the page directly to inspect headers.
	req, err := http.NewRequest(http.MethodGet, w.origin.URL+"/index.html", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.AddCookie(&http.Cookie{Name: CookieName, Value: c.UserID})
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	hint := resp.Header.Get(rules.CacheHintHeader)
	if !strings.Contains(hint, "http://slow.example/obj.bin=http://alt.example/obj.bin") {
		t.Errorf("cache hint = %q, want old=new mapping", hint)
	}
}

// TestEndToEndPerUser confirms a second, fresh user still gets the default
// page after the first user's switchover.
func TestEndToEndPerUser(t *testing.T) {
	hosts := []string{"slow.example", "h2.example", "h3.example", "h4.example", "h5.example"}
	w := newIntegrationWorld(t, hosts, "alt.example", core.Policy{})
	defer w.close()
	w.content["slow.example"].SetDelay(150 * time.Millisecond)

	c1 := &client.HTTPClient{Resolve: w.resolve}
	if _, _, err := c1.LoadAndReport(w.origin.URL, "/index.html"); err != nil {
		t.Fatal(err)
	}
	if _, html, err := c1.LoadAndReport(w.origin.URL, "/index.html"); err != nil {
		t.Fatal(err)
	} else if strings.Contains(html, "slow.example") {
		t.Error("user 1 not switched")
	}

	c2 := &client.HTTPClient{Resolve: w.resolve}
	_, html2, err := c2.LoadPage(w.origin.URL, "/index.html")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(html2, "slow.example") {
		t.Error("fresh user got a modified page (cross-user leakage)")
	}
}

// TestEndToEndHealthyNoSwitch: with no degradation the page stays default.
func TestEndToEndHealthyNoSwitch(t *testing.T) {
	hosts := []string{"h1.example", "h2.example", "h3.example", "h4.example", "h5.example"}
	w := newIntegrationWorld(t, hosts, "alt.example", core.Policy{})
	defer w.close()

	// Realistic, spread base latencies: loopback responses complete in
	// tens of microseconds, so without them the MAD criterion would be
	// judging scheduler noise rather than provider behaviour.
	for i, h := range hosts {
		w.content[h].SetDelay(time.Duration(5+3*i) * time.Millisecond)
	}

	c := &client.HTTPClient{Resolve: w.resolve}
	for i := 0; i < 3; i++ {
		_, html, err := c.LoadAndReport(w.origin.URL, "/index.html")
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(html, "alt.example") {
			t.Fatalf("load %d: healthy deployment switched providers", i+1)
		}
	}
}
