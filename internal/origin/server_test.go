package origin

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"oak/internal/core"
	"oak/internal/report"
	"oak/internal/rules"
)

func newTestServer(t *testing.T, rs []*rules.Rule) *Server {
	t.Helper()
	engine, err := core.NewEngine(rs)
	if err != nil {
		t.Fatal(err)
	}
	return NewServer(engine)
}

func TestServeUnknownPage404(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/missing.html")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d, want 404", resp.StatusCode)
	}
}

func TestServeIssuesCookie(t *testing.T) {
	s := newTestServer(t, nil)
	s.SetPage("/index.html", "<html>hello</html>")
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/index.html")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var found bool
	for _, c := range resp.Cookies() {
		if c.Name == CookieName && c.Value != "" {
			found = true
		}
	}
	if !found {
		t.Error("no oak cookie issued to fresh client")
	}
}

func TestServeKeepsExistingCookie(t *testing.T) {
	s := newTestServer(t, nil)
	s.SetPage("/", "<html></html>")
	ts := httptest.NewServer(s)
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/", nil)
	req.AddCookie(&http.Cookie{Name: CookieName, Value: "existing-user"})
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	for _, c := range resp.Cookies() {
		if c.Name == CookieName {
			t.Errorf("server re-issued cookie %q over existing one", c.Value)
		}
	}
}

func TestReportEndpointValidation(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	// GET not allowed.
	resp, err := http.Get(ts.URL + ReportPath)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET report status = %d, want 405", resp.StatusCode)
	}

	// Bad JSON rejected.
	resp, err = http.Post(ts.URL+ReportPath, "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON status = %d, want 400", resp.StatusCode)
	}

	// Valid report accepted.
	rep := &report.Report{UserID: "u1", Page: "/", Entries: []report.Entry{
		{URL: "http://x.example/a", ServerAddr: "1.2.3.4", SizeBytes: 10, DurationMillis: 5},
	}}
	data, _ := rep.Marshal()
	resp, err = http.Post(ts.URL+ReportPath, "application/json", strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("valid report status = %d, want 204", resp.StatusCode)
	}
	if s.Engine().Users() != 1 {
		t.Errorf("engine users = %d, want 1", s.Engine().Users())
	}
}

func TestReportCookieOverridesBodyUserID(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	rep := &report.Report{UserID: "spoofed", Page: "/", Entries: []report.Entry{
		{URL: "http://x.example/a", ServerAddr: "1.2.3.4", SizeBytes: 10, DurationMillis: 5},
	}}
	data, _ := rep.Marshal()
	req, _ := http.NewRequest(http.MethodPost, ts.URL+ReportPath, strings.NewReader(string(data)))
	req.AddCookie(&http.Cookie{Name: CookieName, Value: "real-user"})
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if _, ok := s.Engine().Snapshot("real-user"); !ok {
		t.Error("report not attributed to cookie identity")
	}
	if _, ok := s.Engine().Snapshot("spoofed"); ok {
		t.Error("spoofed body user id accepted over cookie")
	}
}

func TestPageMethodRestrictions(t *testing.T) {
	s := newTestServer(t, nil)
	s.SetPage("/", "<html></html>")
	ts := httptest.NewServer(s)
	defer ts.Close()
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("DELETE status = %d, want 405", resp.StatusCode)
	}
}

func TestContentServer(t *testing.T) {
	cs := NewContentServer()
	cs.AddObject("/obj.bin", 1234)
	cs.AddScript("/a.js", "console.log(1)")
	ts := httptest.NewServer(cs)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/obj.bin")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if len(data) != 1234 {
		t.Errorf("object size = %d, want 1234", len(data))
	}

	resp, err = http.Get(ts.URL + "/a.js")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "console.log(1)" {
		t.Errorf("script body = %q", body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "javascript") {
		t.Errorf("script content type = %q", ct)
	}

	resp, err = http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing object status = %d", resp.StatusCode)
	}
}

func TestContentServerDelay(t *testing.T) {
	cs := NewContentServer()
	cs.AddObject("/o", 10)
	if cs.Delay() != 0 {
		t.Error("fresh server has delay")
	}
	cs.SetDelay(25 * time.Millisecond)
	req := httptest.NewRequest(http.MethodGet, "/o", nil)
	rec := httptest.NewRecorder()
	start := time.Now()
	cs.ServeHTTP(rec, req)
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Errorf("delayed response took %v, want >= ~25ms", elapsed)
	}
}
