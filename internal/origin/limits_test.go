package origin

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestReportTooLargeRejected(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	huge := strings.Repeat("x", maxReportBytes+10)
	resp, err := http.Post(ts.URL+ReportPath, "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("status = %d, want 413", resp.StatusCode)
	}
	if s.Engine().Users() != 0 {
		t.Error("oversized report reached the engine")
	}
}

func TestHeadRequestNoBody(t *testing.T) {
	s := newTestServer(t, nil)
	s.SetPage("/", "<html>body here</html>")
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Head(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("HEAD status = %d", resp.StatusCode)
	}
	if len(body) != 0 {
		t.Errorf("HEAD returned %d body bytes", len(body))
	}
	if cl := resp.Header.Get("Content-Length"); cl != "22" {
		t.Errorf("Content-Length = %q, want 22", cl)
	}
}

func TestContentTypeHTML(t *testing.T) {
	s := newTestServer(t, nil)
	s.SetPage("/", "<html></html>")
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/html") {
		t.Errorf("Content-Type = %q", ct)
	}
}

func TestSetPageReplaces(t *testing.T) {
	s := newTestServer(t, nil)
	s.SetPage("/", "<html>v1</html>")
	s.SetPage("/", "<html>v2</html>")
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "v2") {
		t.Errorf("page not replaced: %q", body)
	}
}

func TestDistinctUsersGetDistinctCookies(t *testing.T) {
	s := newTestServer(t, nil)
	s.SetPage("/", "<html></html>")
	ts := httptest.NewServer(s)
	defer ts.Close()

	get := func() string {
		resp, err := http.Get(ts.URL + "/")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		for _, c := range resp.Cookies() {
			if c.Name == CookieName {
				return c.Value
			}
		}
		return ""
	}
	a, b := get(), get()
	if a == "" || b == "" || a == b {
		t.Errorf("cookies not distinct: %q vs %q", a, b)
	}
}

func TestAuditEndpoint(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Get(ts.URL + AuditPath)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("audit status = %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "Oak audit") {
		t.Errorf("audit body = %q", body)
	}

	req, _ := http.NewRequest(http.MethodPost, ts.URL+AuditPath, nil)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST audit status = %d, want 405", resp2.StatusCode)
	}
}
