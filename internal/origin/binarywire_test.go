package origin

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"oak/internal/core"
	"oak/internal/report"
	"oak/internal/rules"
)

// Binary wire-format endpoint tests: the origin negotiates OAKRPT1 bodies by
// Content-Type — application/x-oak-report for one report, -batch for
// concatenated length-prefixed frames — and must land every report in the
// exact same engine state the JSON path produces.

// binaryReport builds the binary-wire twin of batchLine(user): same page,
// same entries, same clear violator.
func binaryReport(user string) *report.Report {
	return &report.Report{
		UserID: user,
		Page:   "/",
		Entries: []report.Entry{
			{URL: "http://slow.example/x.png", ServerAddr: "9.9.9.9", SizeBytes: 1000, DurationMillis: 3000},
			{URL: "http://a.example/a.png", ServerAddr: "1.1.1.1", SizeBytes: 1000, DurationMillis: 100},
			{URL: "http://b.example/b.png", ServerAddr: "2.2.2.2", SizeBytes: 1000, DurationMillis: 110},
			{URL: "http://c.example/c.png", ServerAddr: "3.3.3.3", SizeBytes: 1000, DurationMillis: 95},
		},
	}
}

func TestBinaryEndpointSingleReport(t *testing.T) {
	s := newTestServer(t, []*rules.Rule{swapRule()})
	ts := httptest.NewServer(s)
	defer ts.Close()

	body, err := binaryReport("bin-u1").MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+ReportPath, report.ContentTypeBinary, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("binary report status = %d, want 204", resp.StatusCode)
	}
	if _, ok := s.Engine().Snapshot("bin-u1"); !ok {
		t.Error("binary report did not reach the engine")
	}
}

func TestBinaryEndpointRejectsGarbage(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	for _, body := range [][]byte{
		[]byte("not a binary report"),
		[]byte("OAKRPT1"),                     // magic, then truncation
		[]byte("OAKRPT1\xff\xff\xff\xff\xff"), // hostile length prefix
	} {
		resp, err := http.Post(ts.URL+ReportPath, report.ContentTypeBinary, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("garbage %q status = %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestBinaryBatchEndpoint(t *testing.T) {
	s := newTestServer(t, []*rules.Rule{swapRule()})
	ts := httptest.NewServer(s)
	defer ts.Close()

	var body, scratch []byte
	for i := 0; i < 25; i++ {
		body, scratch = report.AppendBinaryFrame(body, scratch, binaryReport(fmt.Sprintf("binbatch-u%d", i)))
	}
	resp, res := postBatch(t, ts.URL, report.ContentTypeBinaryBatch, string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary batch status = %d, want 200", resp.StatusCode)
	}
	if res.Submitted != 25 || res.Processed != 25 || res.Failed != 0 {
		t.Fatalf("binary batch result = %+v", res)
	}
	if got := s.Engine().Users(); got != 25 {
		t.Errorf("engine users = %d, want 25", got)
	}
	if st := s.Engine().Ledger().Stats(); len(st) != 1 || st[0].Users != 25 {
		t.Errorf("ledger stats = %+v, want swap across 25 users", st)
	}
}

// TestBinaryBatchFramingError pins the partial-failure semantics: a frame
// whose payload will not decode fails alone, while a framing error (the
// stream cannot resync) fails once and ends the batch — reports sliced off
// before it still land.
func TestBinaryBatchFramingError(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	var body, scratch []byte
	body, scratch = report.AppendBinaryFrame(body, scratch, binaryReport("frame-good"))
	// A well-framed payload that is not a report: fails alone.
	body = append(body, 3)
	body = append(body, "junk"[:3]...)
	body, _ = report.AppendBinaryFrame(body, scratch, binaryReport("frame-good-2"))
	// Trailing garbage the framer cannot slice: one terminal failure.
	body = append(body, 0xff, 0xff)

	resp, res := postBatch(t, ts.URL, report.ContentTypeBinaryBatch, string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (batches are not transactional)", resp.StatusCode)
	}
	if res.Submitted != 4 || res.Processed != 2 || res.Failed != 2 {
		t.Fatalf("result = %+v, want 4 submitted / 2 processed / 2 failed", res)
	}
	if got := s.Engine().Users(); got != 2 {
		t.Errorf("engine users = %d, want 2", got)
	}
}

func TestBinaryBatchCookieStampsIdentity(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	var body, scratch []byte
	body, scratch = report.AppendBinaryFrame(body, scratch, binaryReport("impostor-1"))
	body, _ = report.AppendBinaryFrame(body, scratch, binaryReport("impostor-2"))
	req, _ := http.NewRequest(http.MethodPost, ts.URL+ReportPath, bytes.NewReader(body))
	req.Header.Set("Content-Type", report.ContentTypeBinaryBatch)
	req.AddCookie(&http.Cookie{Name: CookieName, Value: "real-user"})
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	if got := s.Engine().Users(); got != 1 {
		t.Errorf("engine users = %d, want 1 (cookie is authoritative)", got)
	}
	if _, ok := s.Engine().Snapshot("impostor-1"); ok {
		t.Error("body-declared identity bypassed the cookie")
	}
}

// TestWireFormatsYieldIdenticalState is the acceptance pin: the same logical
// report stream, submitted once as JSON and once as OAKRPT1, leaves two
// engines with byte-identical exported state.
func TestWireFormatsYieldIdenticalState(t *testing.T) {
	fixed := time.Unix(1700000000, 0)
	build := func() (*core.Engine, *httptest.Server) {
		engine, err := core.NewEngine([]*rules.Rule{swapRule()}, core.WithClock(func() time.Time { return fixed }))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { engine.Close() })
		ts := httptest.NewServer(NewServer(engine))
		t.Cleanup(ts.Close)
		return engine, ts
	}
	jsonEngine, jsonTS := build()
	binEngine, binTS := build()

	for i := 0; i < 5; i++ {
		rep := binaryReport(fmt.Sprintf("wire-u%d", i))
		jsonBody, err := rep.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		binBody, err := rep.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		for _, post := range []struct {
			ts   *httptest.Server
			ct   string
			body []byte
		}{
			{jsonTS, report.ContentTypeJSON, jsonBody},
			{binTS, report.ContentTypeBinary, binBody},
		} {
			resp, err := http.Post(post.ts.URL+ReportPath, post.ct, bytes.NewReader(post.body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusNoContent {
				t.Fatalf("%s status = %d, want 204", post.ct, resp.StatusCode)
			}
		}
	}

	jsonState, err := jsonEngine.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	binState, err := binEngine.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jsonState, binState) {
		t.Errorf("engine exports differ by wire format:\njson: %s\nbinary: %s", jsonState, binState)
	}
}
