// Package origin provides the HTTP half of the Oak server (Section 4 of the
// paper): an origin web server that issues identifying cookies, rewrites
// outgoing pages through the Oak engine on a per-user basis, and accepts
// client performance reports via HTTP POST — plus configurable external
// content servers to stand in for third-party providers in integration
// tests and examples.
package origin

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"oak/internal/core"
	"oak/internal/report"
	"oak/internal/rules"
)

// CookieName is the identifying cookie Oak issues to each client.
const CookieName = "oak-user"

// ReportPath is the endpoint performance reports are POSTed to.
const ReportPath = "/oak/report"

// AuditPath serves the operator audit summary (the paper's "offline
// auditing tool"): which components of the site under-perform in the wild,
// per rule and per server. Deployments should restrict access to it (it is
// operator-facing, not client-facing).
const AuditPath = "/oak/audit"

// maxReportBytes bounds report bodies; the paper measures a worst case of
// ~345 KB on the Alexa 500, so 4 MB is a generous ceiling.
const maxReportBytes = 4 << 20

// Server is an Oak-fronted origin web server.
type Server struct {
	engine  *core.Engine
	started time.Time

	mu     sync.RWMutex
	pages  map[string]string
	nextID atomic.Uint64
}

var _ http.Handler = (*Server)(nil)

// NewServer wraps an engine. Pages are registered with SetPage.
func NewServer(engine *core.Engine) *Server {
	return &Server{
		engine:  engine,
		started: time.Now(),
		pages:   make(map[string]string),
	}
}

// Engine returns the underlying Oak engine.
func (s *Server) Engine() *core.Engine { return s.engine }

// SetPage registers (or replaces) the default markup for a path.
func (s *Server) SetPage(path, html string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pages[path] = html
}

// ServeHTTP implements the two server-side interactions of Figure 4/5:
// page delivery with per-user modification, and report ingestion.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case ReportPath:
		s.handleReport(w, r)
	case AuditPath:
		s.handleAudit(w, r)
	case MetricsPath:
		s.handleMetrics(w, r)
	case HealthzPath:
		s.handleHealthz(w, r)
	case TracePath:
		s.handleTrace(w, r)
	default:
		s.handlePage(w, r)
	}
}

// handleAudit serves the operator audit summary as plain text.
func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = io.WriteString(w, s.engine.Audit().Render())
}

// handlePage serves a page, issuing a cookie if the client lacks one and
// applying the user's active rules before delivery.
func (s *Server) handlePage(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	s.mu.RLock()
	html, ok := s.pages[r.URL.Path]
	s.mu.RUnlock()
	if !ok {
		http.NotFound(w, r)
		return
	}

	userID := s.userID(w, r)
	modified, applied := s.engine.ModifyPage(userID, r.URL.Path, html)
	if hints := rules.CacheHintValue(applied); hints != "" {
		w.Header().Set(rules.CacheHintHeader, hints)
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Header().Set("Content-Length", strconv.Itoa(len(modified)))
	if r.Method == http.MethodHead {
		return
	}
	_, _ = io.WriteString(w, modified)
}

// handleReport ingests one performance report.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxReportBytes+1))
	if err != nil {
		http.Error(w, "read body", http.StatusBadRequest)
		return
	}
	if len(body) > maxReportBytes {
		http.Error(w, "report too large", http.StatusRequestEntityTooLarge)
		return
	}
	rep, err := report.Unmarshal(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// The cookie is authoritative for identity when present: a report must
	// not mutate another user's profile.
	if c, err := r.Cookie(CookieName); err == nil && c.Value != "" {
		rep.UserID = c.Value
	}
	if _, err := s.engine.HandleReport(rep); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// userID returns the request's Oak user id, issuing a fresh cookie when the
// client has none.
func (s *Server) userID(w http.ResponseWriter, r *http.Request) string {
	if c, err := r.Cookie(CookieName); err == nil && c.Value != "" {
		return c.Value
	}
	id := fmt.Sprintf("oak-%d", s.nextID.Add(1))
	http.SetCookie(w, &http.Cookie{Name: CookieName, Value: id, Path: "/"})
	return id
}
