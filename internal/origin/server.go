// Package origin provides the HTTP half of the Oak server (Section 4 of the
// paper): an origin web server that issues identifying cookies, rewrites
// outgoing pages through the Oak engine on a per-user basis, and accepts
// client performance reports via HTTP POST — plus configurable external
// content servers to stand in for third-party providers in integration
// tests and examples.
package origin

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"path"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"oak/internal/core"
	"oak/internal/obs"
	"oak/internal/report"
	"oak/internal/rules"
)

// CookieName is the identifying cookie Oak issues to each client.
const CookieName = "oak-user"

// ReportPath is the endpoint performance reports are POSTed to. A body with
// Content-Type application/json (or none) is one report; an NDJSON
// Content-Type (see BatchContentType) marks a batch of one report per line;
// application/x-oak-report carries one binary OAKRPT1 report and
// application/x-oak-report-batch a stream of OAKRPT1 frames (see
// report.ContentTypeBinary / report.ContentTypeBinaryBatch).
const ReportPath = "/oak/report"

// AuditPath serves the operator audit summary (the paper's "offline
// auditing tool"): which components of the site under-perform in the wild,
// per rule and per server. Deployments should restrict access to it (it is
// operator-facing, not client-facing).
const AuditPath = "/oak/audit"

// Versioned API surface: every endpoint is also mounted under /oak/v1/, and
// new integrations should use the v1 paths. The unversioned paths remain as
// aliases dispatching to the very same handlers — responses are
// byte-identical — but are deprecated and will not gain new endpoints.
const (
	// V1Prefix is the versioned API mount point.
	V1Prefix = "/oak/v1"
	// ReportPathV1 is the v1 report-ingestion endpoint (alias: ReportPath).
	ReportPathV1 = V1Prefix + "/report"
	// AuditPathV1 is the v1 audit endpoint (alias: AuditPath).
	AuditPathV1 = V1Prefix + "/audit"
)

// maxReportBytes is the default bound on single-report bodies; the paper
// measures a worst case of ~345 KB on the Alexa 500, so 4 MB is a generous
// ceiling. WithMaxBodyBytes overrides it.
const maxReportBytes = 4 << 20

// batchBodyFactor scales the single-report body bound up for NDJSON batch
// bodies: a batch may carry batchBodyFactor reports' worth of bytes, while
// each individual line stays under the single-report bound.
const batchBodyFactor = 16

// StatusClientClosedRequest is the nginx-convention status recorded when
// the client abandoned the request (context cancelled) before the engine
// finished with it. The client is gone, so the code is for logs and
// middleware, not the wire.
const StatusClientClosedRequest = 499

// DefaultRewriteBudget bounds how long page delivery waits for the engine's
// per-user rewrite before serving the page unmodified (degraded mode). The
// rewrite path normally takes microseconds; hitting this budget means the
// user's shard is wedged — ingest saturation, a stuck script fetch — and an
// unrewritten page beats a stalled one.
const DefaultRewriteBudget = 500 * time.Millisecond

// Server is an Oak-fronted origin web server.
//
// Construction is NewServer(engine, opts...); the zero-option form wraps an
// engine with default limits and cookie-based user identification. The page
// registry (SetPage / RemovePage / Pages) may be mutated at any time,
// including while the server is serving.
type Server struct {
	engine  *core.Engine
	started time.Time

	// Options (fixed after NewServer).
	userIDFn      func(*http.Request) string
	maxBodyBytes  int64
	rewriteBudget time.Duration

	// pagesDegraded counts page deliveries that hit the rewrite budget and
	// were served unmodified.
	pagesDegraded obs.Counter

	mu     sync.RWMutex
	pages  map[string]string
	nextID atomic.Uint64
}

var _ http.Handler = (*Server)(nil)

// Option configures a Server at construction time.
type Option func(*Server)

// WithUserIDFunc overrides how the server identifies the user behind a
// request. The function is consulted first for both page delivery and
// report ingestion; when it returns "", the default cookie mechanism
// applies (read the oak-user cookie, issuing one on page delivery if the
// client has none). Use it to derive identity from an authentication
// header, a TLS client certificate, or an existing session system.
func WithUserIDFunc(f func(*http.Request) string) Option {
	return func(s *Server) { s.userIDFn = f }
}

// WithMaxBodyBytes bounds single-report bodies to n bytes (default 4 MB).
// NDJSON batch bodies may total 16× the bound, with each line individually
// under it. Non-positive n keeps the default.
func WithMaxBodyBytes(n int64) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxBodyBytes = n
		}
	}
}

// WithRewriteBudget bounds how long page delivery waits for the per-user
// rewrite before falling back to the unmodified page (default
// DefaultRewriteBudget). Degraded deliveries are counted in the metrics
// endpoint's pages_degraded. Non-positive d disables the budget: page
// delivery then blocks for as long as the rewrite takes, pre-resilience
// behaviour.
func WithRewriteBudget(d time.Duration) Option {
	return func(s *Server) { s.rewriteBudget = d }
}

// WithPagesFrom registers every *.html file in fsys at its slash-rooted
// path (index.html files also at their directory path), like LoadPages. It
// is meant for embedded page bundles (embed.FS); a filesystem that fails
// mid-walk is a programming error and panics. Load pages from disk with
// LoadPages instead, which reports errors.
func WithPagesFrom(fsys fs.FS) Option {
	return func(s *Server) {
		if _, err := s.LoadPages(fsys); err != nil {
			panic(fmt.Sprintf("origin: WithPagesFrom: %v", err))
		}
	}
}

// NewServer wraps an engine. The zero-option form serves an empty page
// registry (populate it with SetPage or LoadPages) with default limits.
func NewServer(engine *core.Engine, opts ...Option) *Server {
	s := &Server{
		engine:        engine,
		started:       time.Now(),
		pages:         make(map[string]string),
		maxBodyBytes:  maxReportBytes,
		rewriteBudget: DefaultRewriteBudget,
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Engine returns the underlying Oak engine.
func (s *Server) Engine() *core.Engine { return s.engine }

// SetPage registers (or replaces) the default markup for a path. The
// engine's rewrite cache is flushed: entries for the old content are
// unreachable by key anyway, but their memory should be released now.
func (s *Server) SetPage(path, html string) {
	s.mu.Lock()
	s.pages[path] = html
	s.mu.Unlock()
	s.engine.FlushRewriteCache()
}

// RemovePage deletes the page registered at path, if any. Subsequent
// requests for the path get 404; per-user rule state is unaffected. The
// engine's rewrite cache is flushed (as in SetPage).
func (s *Server) RemovePage(path string) {
	s.mu.Lock()
	delete(s.pages, path)
	s.mu.Unlock()
	s.engine.FlushRewriteCache()
}

// Pages returns the registered page paths, sorted.
func (s *Server) Pages() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.pages))
	for p := range s.pages {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// LoadPages walks fsys and registers every *.html file at its slash-rooted
// path ("dir/index.html" serves at "/dir/index.html" and also at "/dir/").
// It returns how many files were registered. Already-registered paths are
// replaced; other paths are left alone, so several bundles can be layered.
func (s *Server) LoadPages(fsys fs.FS) (int, error) {
	count := 0
	err := fs.WalkDir(fsys, ".", func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(p, ".html") {
			return nil
		}
		data, err := fs.ReadFile(fsys, p)
		if err != nil {
			return err
		}
		urlPath := "/" + path.Clean(p)
		s.SetPage(urlPath, string(data))
		if strings.HasSuffix(urlPath, "/index.html") {
			s.SetPage(strings.TrimSuffix(urlPath, "index.html"), string(data))
		}
		count++
		return nil
	})
	if err != nil {
		return count, fmt.Errorf("origin: load pages: %w", err)
	}
	return count, nil
}

// ServeHTTP implements the two server-side interactions of Figure 4/5:
// page delivery with per-user modification, and report ingestion. Every
// endpoint answers under both its versioned /oak/v1 path and its legacy
// unversioned alias; both dispatch to the same handler, so the responses
// are byte-identical.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case ReportPath, ReportPathV1:
		s.handleReport(w, r)
	case AuditPath, AuditPathV1:
		s.handleAudit(w, r)
	case MetricsPath, MetricsPathV1:
		s.handleMetrics(w, r)
	case HealthzPath, HealthzPathV1:
		s.handleHealthz(w, r)
	case TracePath, TracePathV1:
		s.handleTrace(w, r)
	case PopulationPath, PopulationPathV1:
		s.handlePopulation(w, r)
	// Cluster administration endpoints are v1-only: the unversioned alias
	// surface is frozen. See admin.go.
	case StatePathV1:
		s.handleState(w, r)
	case GuardQuarantinePathV1:
		s.handleGuardQuarantine(w, r)
	case GuardReleasePathV1:
		s.handleGuardRelease(w, r)
	case PopulationDegradePathV1:
		s.handlePopulationDegrade(w, r)
	case PopulationClearPathV1:
		s.handlePopulationClear(w, r)
	default:
		s.handlePage(w, r)
	}
}

// handleAudit serves the operator audit summary as plain text.
func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = io.WriteString(w, s.engine.Audit().Render())
}

// handlePage serves a page, issuing a cookie if the client lacks one and
// applying the user's active rules before delivery. Page delivery is the
// surface that must never stall: when the rewrite cannot complete within
// the rewrite budget (the user's shard is wedged by saturated ingest or a
// stuck matcher fetch), the page is served unmodified — degraded, but
// available.
func (s *Server) handlePage(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	s.mu.RLock()
	html, ok := s.pages[r.URL.Path]
	s.mu.RUnlock()
	if !ok {
		http.NotFound(w, r)
		return
	}

	userID := s.userID(w, r)
	rw := s.rewriteBudgeted(userID, r.URL.Path, html)
	if rw.Hint != "" {
		w.Header().Set(rules.CacheHintHeader, rw.Hint)
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Header().Set("Content-Length", strconv.Itoa(len(rw.HTML)))
	if r.Method == http.MethodHead {
		return
	}
	_, _ = io.WriteString(w, rw.HTML)
}

// rewriteBudgeted runs the engine rewrite under the rewrite budget,
// returning the page unmodified when the budget lapses.
//
// It first asks the engine for a non-blocking cached answer: a user with no
// in-scope activations, or a rewrite the cache already holds, is served
// without spawning the watchdog goroutine or its timer — and, because that
// path never waits on anything, a cache hit can never be degraded no matter
// how wedged the user's shard is. Only rewrites that must be computed go
// through the budget machinery; the abandoned rewrite goroutine finishes
// (harmlessly, against its own copy of the inputs) once the engine
// unwedges; it can never write to the response.
func (s *Server) rewriteBudgeted(userID, path, html string) core.Rewrite {
	if rw, ok := s.engine.RewriteCached(userID, path, html); ok {
		return rw
	}
	if s.rewriteBudget <= 0 {
		return s.engine.RewritePage(userID, path, html)
	}
	done := make(chan core.Rewrite, 1)
	go func() {
		done <- s.engine.RewritePage(userID, path, html)
	}()
	timer := time.NewTimer(s.rewriteBudget)
	defer timer.Stop()
	select {
	case rw := <-done:
		return rw
	case <-timer.C:
		s.pagesDegraded.Inc()
		return core.Rewrite{HTML: html}
	}
}

// PagesDegraded returns how many page deliveries were served unmodified
// because the rewrite budget lapsed.
func (s *Server) PagesDegraded() uint64 { return s.pagesDegraded.Value() }

// handleReport ingests performance reports, negotiating the wire format by
// Content-Type: one JSON report per request by default, one per line for
// NDJSON, a single OAKRPT1 payload for application/x-oak-report, and
// concatenated OAKRPT1 frames for application/x-oak-report-batch. Every
// format decodes into pooled report structs whose ownership passes to the
// engine at submission.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	ct := r.Header.Get("Content-Type")
	switch {
	case isBinaryBatchContentType(ct):
		s.handleReportBatchBinary(w, r)
		return
	case isBatchContentType(ct):
		s.handleReportBatch(w, r)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, s.maxBodyBytes+1))
	if err != nil {
		http.Error(w, "read body", http.StatusBadRequest)
		return
	}
	if int64(len(body)) > s.maxBodyBytes {
		http.Error(w, "report too large", http.StatusRequestEntityTooLarge)
		return
	}
	var rep *report.Report
	if isBinaryContentType(ct) {
		rep, err = report.DecodeBinaryPooled(body)
	} else {
		rep, err = report.DecodePooled(body)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.stampIdentity(rep, r)
	if _, err := s.engine.HandleReportCtx(r.Context(), rep); err != nil {
		s.writeIngestError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// writeIngestError maps an engine ingest error to the HTTP status that
// tells the client the truth: overload and shutdown are retryable server
// states (503 + Retry-After), a cancelled request is the client's own abort
// (499, nginx convention), and everything else — validation failures — is a
// malformed request (400).
func (s *Server) writeIngestError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, core.ErrOverloaded):
		retryAfter := core.DefaultRetryAfter
		var oe *core.OverloadError
		if errors.As(err, &oe) && oe.RetryAfter > 0 {
			retryAfter = oe.RetryAfter
		}
		w.Header().Set("Retry-After", retryAfterSeconds(retryAfter))
		http.Error(w, "overloaded, retry later", http.StatusServiceUnavailable)
	case errors.Is(err, core.ErrShuttingDown):
		w.Header().Set("Retry-After", retryAfterSeconds(core.DefaultRetryAfter))
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The client is gone; the status is for logs and middleware.
		w.WriteHeader(StatusClientClosedRequest)
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

// retryAfterSeconds renders a duration as the integral seconds the
// Retry-After header requires, rounding up so "500ms" does not become "0".
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// stampIdentity overrides the report's self-declared user ID with the
// request's authoritative identity, when one exists: a report must not
// mutate another user's profile. The configured user-ID function wins over
// the cookie.
func (s *Server) stampIdentity(rep *report.Report, r *http.Request) {
	if s.userIDFn != nil {
		if id := s.userIDFn(r); id != "" {
			rep.UserID = id
			return
		}
	}
	if c, err := r.Cookie(CookieName); err == nil && c.Value != "" {
		rep.UserID = c.Value
	}
}

// userID returns the request's Oak user id: the configured user-ID function
// first, then the cookie, then a freshly issued cookie.
func (s *Server) userID(w http.ResponseWriter, r *http.Request) string {
	if s.userIDFn != nil {
		if id := s.userIDFn(r); id != "" {
			return id
		}
	}
	if c, err := r.Cookie(CookieName); err == nil && c.Value != "" {
		return c.Value
	}
	id := fmt.Sprintf("oak-%d", s.nextID.Add(1))
	http.SetCookie(w, &http.Cookie{Name: CookieName, Value: id, Path: "/"})
	return id
}
