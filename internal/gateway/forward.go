package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"oak/internal/client"
	"oak/internal/core"
	"oak/internal/origin"
	"oak/internal/report"
	"oak/internal/rules"
)

// Forwarding: reports and page serves are routed to the backend owning the
// user's hash-ring arc and carried by the oak client's retry machinery
// (SubmitBytes: backoff + jitter + Retry-After, bounded by ForwardTimeout).
// When the primary's forward fails at the transport level, the request
// fails over — once — to the standby or the next healthy backend, so a
// freshly dead backend costs a retry schedule, not an error.

// maxForwardBytes bounds a forwarded request body. It matches the origin's
// worst-case batch bound (16 × 4 MB), so the gateway never accepts a body
// the backend would reject outright.
const maxForwardBytes = 64 << 20

// mirrorHeaders are the response headers the gateway relays from backends.
var mirrorHeaders = []string{"Content-Type", "Retry-After", rules.CacheHintHeader}

// forwardTo POSTs a body to one backend under the gateway's retry
// machinery.
func (g *Gateway) forwardTo(ctx context.Context, b *backend, path, contentType string, body []byte, cookies []*http.Cookie) (*client.SubmitResult, error) {
	return g.fwd.SubmitBytes(ctx, b.addr+path, contentType, body, cookies)
}

// forwardWithFailover tries the primary, then the fallback. The returned
// backend is the one that actually answered.
func (g *Gateway) forwardWithFailover(ctx context.Context, i int, path, contentType string, body []byte, cookies []*http.Cookie) (*client.SubmitResult, *backend, error) {
	primary, fallback := g.route(i)
	res, err := g.forwardTo(ctx, primary, path, contentType, body, cookies)
	if err == nil {
		return res, primary, nil
	}
	if fallback == nil {
		return nil, primary, err
	}
	g.failovers.Inc()
	g.logf("gateway: failover %s -> %s: %v", primary.addr, fallback.addr, err)
	res, ferr := g.forwardTo(ctx, fallback, path, contentType, body, cookies)
	if ferr != nil {
		return nil, fallback, fmt.Errorf("primary: %v; failover: %w", err, ferr)
	}
	return res, fallback, nil
}

// requestCookie returns the request's oak identity cookie, if any.
func requestCookie(r *http.Request) *http.Cookie {
	if c, err := r.Cookie(origin.CookieName); err == nil && c.Value != "" {
		return c
	}
	return nil
}

// sniffUserID extracts the self-declared userId from a report body —
// JSON or OAKRPT1 — without decoding the rest. Binary payloads put the
// user ID right after the magic for exactly this sniff; JSON bodies are
// walked top-level key by key, stopping at userId (the first key in every
// report the oak client emits), so routing costs a few tokens, not a full
// parse of the entries array. A malformed line yields "" — it still routes
// deterministically, and the owner backend rejects it properly.
func sniffUserID(line []byte) string {
	if report.IsBinary(line) {
		return report.SniffBinaryUser(line)
	}
	dec := json.NewDecoder(bytes.NewReader(line))
	if t, err := dec.Token(); err != nil || t != json.Delim('{') {
		return ""
	}
	for dec.More() {
		key, err := dec.Token()
		if err != nil {
			return ""
		}
		if k, ok := key.(string); ok && k == "userId" {
			var v string
			if dec.Decode(&v) != nil {
				return ""
			}
			return v
		}
		var skip json.RawMessage
		if dec.Decode(&skip) != nil {
			return ""
		}
	}
	return ""
}

// handleReport forwards report submissions. A request with an identity
// cookie belongs wholly to that user and forwards unchanged to the owner
// backend. A cookie-less batch may mix users, so it is split by each
// report's self-declared userId — NDJSON line by line, OAKRPT1 batches
// frame by frame — and the sub-batches forwarded to their owners
// concurrently, the results merged.
func (g *Gateway) handleReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxForwardBytes+1))
	if err != nil {
		http.Error(w, "read body", http.StatusBadRequest)
		return
	}
	if len(body) > maxForwardBytes {
		http.Error(w, "body too large", http.StatusRequestEntityTooLarge)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), g.cfg.ForwardTimeout)
	defer cancel()

	contentType := r.Header.Get("Content-Type")
	if contentType == "" {
		contentType = "application/json"
	}
	ck := requestCookie(r)
	isBinaryBatch := strings.Contains(contentType, "x-oak-report-batch")
	isBatch := isBinaryBatch ||
		strings.Contains(contentType, "ndjson") || strings.Contains(contentType, "jsonl")
	if isBatch && ck == nil {
		if isBinaryBatch {
			g.handleSplitBatchBinary(ctx, w, body, contentType)
		} else {
			g.handleSplitBatch(ctx, w, body, contentType)
		}
		return
	}

	var userID string
	if ck != nil {
		userID = ck.Value
	} else {
		userID = sniffUserID(body)
	}
	var cookies []*http.Cookie
	if ck != nil {
		cookies = append(cookies, ck)
	}
	res, _, err := g.forwardWithFailover(ctx, g.ownerIndex(userID), origin.ReportPathV1, contentType, body, cookies)
	if err != nil {
		http.Error(w, "no backend reachable: "+err.Error(), http.StatusBadGateway)
		return
	}
	g.forwardedReports.Inc()
	mirror(w, res)
}

// splitLines buckets an NDJSON body's lines by owner backend index. The
// returned slices alias body — the caller keeps body alive until every
// forward completes.
func (g *Gateway) splitLines(body []byte) map[int][][]byte {
	groups := make(map[int][][]byte)
	for len(body) > 0 {
		nl := bytes.IndexByte(body, '\n')
		var line []byte
		if nl < 0 {
			line, body = body, nil
		} else {
			line, body = body[:nl], body[nl+1:]
		}
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		i := g.ownerIndex(sniffUserID(line))
		groups[i] = append(groups[i], line)
	}
	return groups
}

// splitFrames buckets an OAKRPT1 batch body's frames (length prefix
// included, so sub-batches reassemble by plain concatenation) by owner
// backend index. The returned slices alias body. A framing error stops the
// split — the stream cannot resync past it — but the frames already sliced
// still forward; the error comes back for the caller to fold into the
// merged summary as one failed report, mirroring how the origin counts an
// unrecoverable framing error.
func (g *Gateway) splitFrames(body []byte) (map[int][][]byte, error) {
	groups := make(map[int][][]byte)
	rest := body
	for {
		frame, next, err := report.NextBinaryFrame(rest)
		if err != nil {
			return groups, err
		}
		if frame == nil {
			return groups, nil
		}
		i := g.ownerIndex(report.SniffBinaryUser(frame))
		groups[i] = append(groups[i], rest[:len(rest)-len(next)])
		rest = next
	}
}

// handleSplitBatch forwards one owner's worth of NDJSON lines to each
// backend concurrently and merges the per-backend BatchResults into one.
func (g *Gateway) handleSplitBatch(ctx context.Context, w http.ResponseWriter, body []byte, contentType string) {
	g.forwardSplit(ctx, w, body, contentType, g.splitLines(body), []byte("\n"), nil)
}

// handleSplitBatchBinary is handleSplitBatch for OAKRPT1 batch bodies:
// frames are bucketed by their sniffed user, sub-batches reassemble by
// concatenation (each bucketed slice keeps its length prefix), and a
// framing error is folded into the merged summary as one failed report.
func (g *Gateway) handleSplitBatchBinary(ctx context.Context, w http.ResponseWriter, body []byte, contentType string) {
	groups, ferr := g.splitFrames(body)
	g.forwardSplit(ctx, w, body, contentType, groups, nil, ferr)
}

// forwardSplit forwards each owner's sub-batch concurrently and merges the
// per-backend BatchResults into one response. sep joins a group's pieces
// back into a body (newline for NDJSON, nothing for binary frames);
// splitErr, when non-nil, is an unrecoverable framing error counted as one
// failed report on top of whatever the backends answered.
func (g *Gateway) forwardSplit(ctx context.Context, w http.ResponseWriter, body []byte, contentType string, groups map[int][][]byte, sep []byte, splitErr error) {
	if len(groups) == 0 {
		if splitErr == nil {
			http.Error(w, "empty batch", http.StatusBadRequest)
			return
		}
		// The body never yielded a single frame: nothing to forward, but the
		// client still gets a batch summary, like the origin would produce.
		writeBatchResult(w, http.StatusOK, core.BatchResult{
			Submitted: 1, Failed: 1, Errors: []string{splitErr.Error()},
		})
		return
	}

	type part struct {
		lines int
		res   *client.SubmitResult
		err   error
	}
	parts := make([]part, 0, len(groups))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i, lines := range groups {
		wg.Add(1)
		go func(i int, lines [][]byte) {
			defer wg.Done()
			sub := body // single-owner batch: forward unchanged, no reassembly
			if len(groups) > 1 || splitErr != nil {
				// Reassemble when owners mix — and when framing broke, so the
				// trailing garbage is not forwarded for the backend to count a
				// second time.
				sub = bytes.Join(lines, sep)
			}
			res, _, err := g.forwardWithFailover(ctx, i, origin.ReportPathV1, contentType, sub, nil)
			mu.Lock()
			parts = append(parts, part{lines: len(lines), res: res, err: err})
			mu.Unlock()
		}(i, lines)
	}
	wg.Wait()

	var merged core.BatchResult
	retryAfter := 0
	reached := false
	for _, p := range parts {
		if p.err != nil {
			merged.Submitted += p.lines
			merged.Failed += p.lines
			if len(merged.Errors) < 8 {
				merged.Errors = append(merged.Errors, "backend unreachable: "+p.err.Error())
			}
			continue
		}
		reached = true
		var br core.BatchResult
		if jerr := json.Unmarshal(p.res.Body, &br); jerr != nil {
			merged.Submitted += p.lines
			merged.Failed += p.lines
			if len(merged.Errors) < 8 {
				merged.Errors = append(merged.Errors, fmt.Sprintf("backend status %d", p.res.Status))
			}
			continue
		}
		merged.Submitted += br.Submitted
		merged.Processed += br.Processed
		merged.Failed += br.Failed
		merged.Overloaded += br.Overloaded
		for _, e := range br.Errors {
			if len(merged.Errors) < 8 {
				merged.Errors = append(merged.Errors, e)
			}
		}
		if secs, perr := strconv.Atoi(p.res.Header.Get("Retry-After")); perr == nil && secs > retryAfter {
			retryAfter = secs
		}
	}
	if !reached {
		http.Error(w, "no backend reachable", http.StatusBadGateway)
		return
	}
	g.forwardedReports.Inc()
	if retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	}
	status := http.StatusOK
	if merged.Overloaded > 0 && merged.Processed == 0 && merged.Overloaded == merged.Failed {
		// Every admitted report was shed: the batch as a whole was refused.
		status = http.StatusServiceUnavailable
	}
	if splitErr != nil {
		// The unrecoverable framing error is one report that never reached a
		// backend: counted after the shed decision, like the origin counts
		// its own parse failures.
		merged.Submitted++
		merged.Failed++
		if len(merged.Errors) < 8 {
			merged.Errors = append(merged.Errors, splitErr.Error())
		}
	}
	writeBatchResult(w, status, merged)
}

// writeBatchResult writes a merged batch summary as indented JSON, the same
// shape the origin's batch endpoint produces.
func writeBatchResult(w http.ResponseWriter, status int, res core.BatchResult) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(res)
}

// handlePage proxies a page serve to the user's owner backend. The gateway
// owns identity at the cluster edge: a client without a cookie is issued
// one here (so routing is stable before any backend is involved), and
// backend Set-Cookie headers are not relayed.
func (g *Gateway) handlePage(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	ck := requestCookie(r)
	if ck == nil {
		ck = &http.Cookie{Name: origin.CookieName, Value: fmt.Sprintf("oak-gw-%d", g.nextID.Add(1)), Path: "/"}
		http.SetCookie(w, ck)
	}
	ctx, cancel := context.WithTimeout(r.Context(), g.cfg.ForwardTimeout)
	defer cancel()

	i := g.ownerIndex(ck.Value)
	primary, fallback := g.route(i)
	resp, err := g.proxyPage(ctx, primary, r, ck)
	if err != nil && fallback != nil {
		g.failovers.Inc()
		g.logf("gateway: page failover %s -> %s: %v", primary.addr, fallback.addr, err)
		resp, err = g.proxyPage(ctx, fallback, r, ck)
	}
	if err != nil {
		http.Error(w, "no backend reachable: "+err.Error(), http.StatusBadGateway)
		return
	}
	g.forwardedPages.Inc()
	for _, h := range mirrorHeaders {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.Status)
	_, _ = w.Write(resp.Body)
}

// proxyPage performs one backend page GET, returning the full response.
func (g *Gateway) proxyPage(ctx context.Context, b *backend, r *http.Request, ck *http.Cookie) (*client.SubmitResult, error) {
	req, err := http.NewRequestWithContext(ctx, r.Method, b.addr+r.URL.RequestURI(), nil)
	if err != nil {
		return nil, err
	}
	req.AddCookie(ck)
	resp, err := g.httpc.Do(req)
	if err != nil {
		return nil, err
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxForwardBytes))
	_ = resp.Body.Close()
	if err != nil {
		return nil, err
	}
	return &client.SubmitResult{Status: resp.StatusCode, Header: resp.Header, Body: body}, nil
}

// mirror relays a backend response: selected headers, status, body.
func mirror(w http.ResponseWriter, res *client.SubmitResult) {
	for _, h := range mirrorHeaders {
		if v := res.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(res.Status)
	_, _ = w.Write(res.Body)
}
