package gateway_test

// Unit tests drive the gateway against small fake backends that record
// what they receive; the state machine, routing, batch splitting and the
// control broadcasts are all asserted deterministically by calling
// ProbeOnce / ControlSweep / ShipSnapshots directly (no background loops).

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"

	"oak/internal/core"
	"oak/internal/gateway"
	"oak/internal/origin"
)

// fakeBackend is a recording stand-in for one oakd process.
type fakeBackend struct {
	ts *httptest.Server

	mu          sync.Mutex
	down        bool
	healthz     origin.HealthzResponse
	pop         *core.PopulationStatus
	reports     [][]byte // bodies received on the report path
	quarantines []string // providers force-quarantined via the control verb
	degrades    []string
	clears      []string
	stateGot    []byte // body received on POST /oak/v1/state
	stateServe  []byte // body served on GET /oak/v1/state
	batchReply  *core.BatchResult
}

func newFakeBackend(t *testing.T) *fakeBackend {
	t.Helper()
	f := &fakeBackend{healthz: origin.HealthzResponse{Status: "ok"}}
	f.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		defer f.mu.Unlock()
		if f.down {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		switch r.URL.Path {
		case origin.HealthzPathV1:
			_ = json.NewEncoder(w).Encode(f.healthz)
		case origin.ReportPathV1:
			body, _ := io.ReadAll(r.Body)
			f.reports = append(f.reports, body)
			if f.batchReply != nil {
				_ = json.NewEncoder(w).Encode(f.batchReply)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		case origin.GuardQuarantinePathV1:
			f.quarantines = append(f.quarantines, r.URL.Query().Get("provider"))
			w.WriteHeader(http.StatusNoContent)
		case origin.PopulationDegradePathV1:
			f.degrades = append(f.degrades, r.URL.Query().Get("provider"))
			w.WriteHeader(http.StatusNoContent)
		case origin.PopulationClearPathV1:
			f.clears = append(f.clears, r.URL.Query().Get("provider"))
			w.WriteHeader(http.StatusNoContent)
		case origin.PopulationPathV1:
			if f.pop == nil {
				http.Error(w, "no population subsystem", http.StatusNotFound)
				return
			}
			_ = json.NewEncoder(w).Encode(f.pop)
		case origin.StatePathV1:
			if r.Method == http.MethodPost {
				f.stateGot, _ = io.ReadAll(r.Body)
				w.WriteHeader(http.StatusNoContent)
				return
			}
			_, _ = w.Write(f.stateServe)
		default: // page serve
			_, _ = fmt.Fprintf(w, "page-from-%s", f.ts.Listener.Addr())
		}
	}))
	t.Cleanup(f.ts.Close)
	return f
}

func (f *fakeBackend) setDown(v bool) {
	f.mu.Lock()
	f.down = v
	f.mu.Unlock()
}

// received is a copy of everything the fake backend has recorded.
type received struct {
	reports     []string
	quarantines []string
	degrades    []string
	clears      []string
	stateGot    []byte
}

func (f *fakeBackend) snapshot() received {
	f.mu.Lock()
	defer f.mu.Unlock()
	var got received
	for _, b := range f.reports {
		got.reports = append(got.reports, string(b))
	}
	got.quarantines = append(got.quarantines, f.quarantines...)
	got.degrades = append(got.degrades, f.degrades...)
	got.clears = append(got.clears, f.clears...)
	got.stateGot = append(got.stateGot, f.stateGot...)
	return got
}

func newTestGateway(t *testing.T, backends []*fakeBackend, standby *fakeBackend) *gateway.Gateway {
	t.Helper()
	cfg := gateway.Config{}
	for _, b := range backends {
		cfg.Backends = append(cfg.Backends, b.ts.URL)
	}
	if standby != nil {
		cfg.Standby = standby.ts.URL
	}
	cfg.Logf = t.Logf
	gw, err := gateway.NewGateway(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)
	return gw
}

// userFor finds a user ID owned by arc i of an n-way split.
func userFor(t *testing.T, i, n int) string {
	t.Helper()
	ranges := core.EqualRanges(n)
	for s := 0; s < 100000; s++ {
		uid := fmt.Sprintf("user-%d-%d", i, s)
		if core.RangeFor(uid, ranges) == i {
			return uid
		}
	}
	t.Fatalf("no user found for arc %d/%d", i, n)
	return ""
}

func TestReportRoutesToOwnerBackend(t *testing.T) {
	fakes := []*fakeBackend{newFakeBackend(t), newFakeBackend(t), newFakeBackend(t)}
	gw := newTestGateway(t, fakes, nil)

	for i := range fakes {
		uid := userFor(t, i, 3)
		body := fmt.Sprintf(`{"userId":%q,"page":"/p","entries":[]}`, uid)
		req := httptest.NewRequest("POST", origin.ReportPathV1, strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		req.AddCookie(&http.Cookie{Name: origin.CookieName, Value: uid})
		rec := httptest.NewRecorder()
		gw.ServeHTTP(rec, req)
		if rec.Code != http.StatusNoContent {
			t.Fatalf("report for arc %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
	}
	for i, f := range fakes {
		got := f.snapshot()
		if len(got.reports) != 1 {
			t.Errorf("backend %d received %d reports, want exactly its own 1", i, len(got.reports))
		}
	}
}

func TestBatchSplitsByUserAndMerges(t *testing.T) {
	fakes := []*fakeBackend{newFakeBackend(t), newFakeBackend(t), newFakeBackend(t)}
	for _, f := range fakes {
		f.batchReply = &core.BatchResult{Submitted: 2, Processed: 2}
	}
	gw := newTestGateway(t, fakes, nil)

	// Two lines per arc, so every backend gets exactly one sub-batch.
	var lines []string
	counts := [3]int{}
	for i := range fakes {
		for j := 0; j < 2; j++ {
			uid := userFor(t, i, 3) + fmt.Sprintf("-%d", j)
			arc := core.RangeFor(uid, core.EqualRanges(3))
			counts[arc]++
			lines = append(lines, fmt.Sprintf(`{"userId":%q,"page":"/p","entries":[]}`, uid))
		}
	}
	perArc := map[int]int{0: counts[0], 1: counts[1], 2: counts[2]}

	req := httptest.NewRequest("POST", origin.ReportPathV1, strings.NewReader(strings.Join(lines, "\n")))
	req.Header.Set("Content-Type", "application/x-ndjson")
	rec := httptest.NewRecorder()
	gw.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status %d: %s", rec.Code, rec.Body.String())
	}
	var merged core.BatchResult
	if err := json.Unmarshal(rec.Body.Bytes(), &merged); err != nil {
		t.Fatal(err)
	}
	reached := 0
	for i, f := range fakes {
		got := f.snapshot()
		if perArc[i] > 0 {
			if len(got.reports) != 1 {
				t.Errorf("backend %d got %d sub-batches, want 1", i, len(got.reports))
			} else {
				reached++
				if n := strings.Count(got.reports[0], "\n") + 1; n != perArc[i] {
					t.Errorf("backend %d sub-batch has %d lines, want %d", i, n, perArc[i])
				}
			}
		}
	}
	if wantSubmitted := reached * 2; merged.Submitted != wantSubmitted {
		t.Errorf("merged.Submitted = %d, want %d", merged.Submitted, wantSubmitted)
	}
}

func TestProbeStateMachineAndRecovery(t *testing.T) {
	fakes := []*fakeBackend{newFakeBackend(t), newFakeBackend(t)}
	gw := newTestGateway(t, fakes, nil)

	probeTimes := func(n int) {
		for i := 0; i < n; i++ {
			gw.ProbeOnce()
		}
	}
	probeTimes(1)
	if st := gw.BackendStates(); st[0] != gateway.StateHealthy || st[1] != gateway.StateHealthy {
		t.Fatalf("initial states = %v", st)
	}

	fakes[0].setDown(true)
	probeTimes(2) // FailThreshold
	if st := gw.BackendStates(); st[0] != gateway.StateUnhealthy {
		t.Fatalf("after 2 failures: %v", st)
	}
	probeTimes(1) // DrainThreshold
	if st := gw.BackendStates(); st[0] != gateway.StateDraining {
		t.Fatalf("after 3 failures: %v", st)
	}
	probeTimes(2) // DeadThreshold
	if st := gw.BackendStates(); st[0] != gateway.StateDead {
		t.Fatalf("after 5 failures: %v", st)
	}

	// A node that answers again is readmitted automatically.
	fakes[0].setDown(false)
	probeTimes(1)
	if st := gw.BackendStates(); st[0] != gateway.StateHealthy {
		t.Fatalf("after recovery: %v", st)
	}
}

func TestPageFailoverToStandby(t *testing.T) {
	fakes := []*fakeBackend{newFakeBackend(t), newFakeBackend(t)}
	standby := newFakeBackend(t)
	gw := newTestGateway(t, fakes, standby)
	gw.ProbeOnce()

	// Backend 0's owner goes down; its user's page must still serve 200.
	fakes[0].setDown(true)
	for i := 0; i < 3; i++ {
		gw.ProbeOnce()
	}
	uid := userFor(t, 0, 2)
	req := httptest.NewRequest("GET", "/index.html", nil)
	req.AddCookie(&http.Cookie{Name: origin.CookieName, Value: uid})
	rec := httptest.NewRecorder()
	gw.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("page during backend loss: status %d", rec.Code)
	}
	sURL, _ := url.Parse(standby.ts.URL)
	if !strings.Contains(rec.Body.String(), sURL.Host) {
		t.Errorf("page served by %q, want standby %s", rec.Body.String(), sURL.Host)
	}
}

func TestBreakerBroadcastIsEdgeTriggered(t *testing.T) {
	fakes := []*fakeBackend{newFakeBackend(t), newFakeBackend(t), newFakeBackend(t)}
	gw := newTestGateway(t, fakes, nil)

	fakes[0].mu.Lock()
	fakes[0].healthz.OpenBreakers = []string{"cdn.example"}
	fakes[0].mu.Unlock()
	gw.ProbeOnce()
	gw.ControlSweep()

	// The trip is mirrored to the other two backends, not back to the
	// originator.
	if got := fakes[0].snapshot().quarantines; len(got) != 0 {
		t.Errorf("originator quarantined: %v", got)
	}
	for i := 1; i < 3; i++ {
		if got := fakes[i].snapshot().quarantines; len(got) != 1 || got[0] != "cdn.example" {
			t.Errorf("backend %d quarantines = %v, want [cdn.example]", i, got)
		}
	}

	// A second sweep with the breaker still open must not re-broadcast.
	gw.ControlSweep()
	if got := fakes[1].snapshot().quarantines; len(got) != 1 {
		t.Errorf("repeat sweep re-broadcast: %v", got)
	}

	// Once no backend reports the breaker open, the edge re-arms: a fresh
	// trip broadcasts again.
	fakes[0].mu.Lock()
	fakes[0].healthz.OpenBreakers = nil
	fakes[0].mu.Unlock()
	gw.ProbeOnce()
	gw.ControlSweep()
	fakes[0].mu.Lock()
	fakes[0].healthz.OpenBreakers = []string{"cdn.example"}
	fakes[0].mu.Unlock()
	gw.ProbeOnce()
	gw.ControlSweep()
	if got := fakes[1].snapshot().quarantines; len(got) != 2 {
		t.Errorf("re-armed edge did not re-broadcast: %v", got)
	}
}

func TestDegradeMirrorAndClear(t *testing.T) {
	fakes := []*fakeBackend{newFakeBackend(t), newFakeBackend(t)}
	for _, f := range fakes {
		f.pop = &core.PopulationStatus{}
	}
	gw := newTestGateway(t, fakes, nil)

	// An organic episode on backend 0 is mirrored onto backend 1 only.
	fakes[0].mu.Lock()
	fakes[0].pop.Degraded = []core.DegradedProvider{{Provider: "ads.example"}}
	fakes[0].mu.Unlock()
	gw.ProbeOnce()
	gw.ControlSweep()
	if got := fakes[0].snapshot().degrades; len(got) != 0 {
		t.Errorf("originator re-marked: %v", got)
	}
	if got := fakes[1].snapshot().degrades; len(got) != 1 || got[0] != "ads.example" {
		t.Fatalf("mirror = %v, want [ads.example]", got)
	}

	// Backend 1 now reports the (manual) mirror; no duplicate mark, no
	// feedback loop.
	fakes[1].mu.Lock()
	fakes[1].pop.Degraded = []core.DegradedProvider{{Provider: "ads.example", Manual: true}}
	fakes[1].mu.Unlock()
	gw.ControlSweep()
	if got := fakes[1].snapshot().degrades; len(got) != 1 {
		t.Errorf("mirror duplicated: %v", got)
	}
	if got := fakes[0].snapshot().degrades; len(got) != 0 {
		t.Errorf("manual mirror fed back onto originator: %v", got)
	}

	// The organic episode recovers: the gateway clears exactly its mirror.
	fakes[0].mu.Lock()
	fakes[0].pop.Degraded = nil
	fakes[0].mu.Unlock()
	gw.ControlSweep()
	if got := fakes[1].snapshot().clears; len(got) != 1 || got[0] != "ads.example" {
		t.Errorf("clears on mirror target = %v, want [ads.example]", got)
	}
	if got := fakes[0].snapshot().clears; len(got) != 0 {
		t.Errorf("clears on originator = %v, want none", got)
	}
}

func TestReplaceShipsStoredSnapshot(t *testing.T) {
	fakes := []*fakeBackend{newFakeBackend(t), newFakeBackend(t)}
	fakes[0].mu.Lock()
	fakes[0].stateServe = []byte("OAKSNAP2-STAND-IN")
	fakes[0].mu.Unlock()
	gw := newTestGateway(t, fakes, nil)
	gw.ProbeOnce()
	gw.ShipSnapshots()

	replacement := newFakeBackend(t)
	if err := gw.Replace(t.Context(), 0, replacement.ts.URL); err != nil {
		t.Fatal(err)
	}
	if got := replacement.snapshot().stateGot; string(got) != "OAKSNAP2-STAND-IN" {
		t.Errorf("replacement received %q, want the stored snapshot", got)
	}
	if st := gw.BackendStates(); st[0] != gateway.StateHealthy {
		t.Errorf("replaced backend state = %v", st[0])
	}
	// Traffic now flows to the replacement's address.
	uid := userFor(t, 0, 2)
	req := httptest.NewRequest("GET", "/index.html", nil)
	req.AddCookie(&http.Cookie{Name: origin.CookieName, Value: uid})
	rec := httptest.NewRecorder()
	gw.ServeHTTP(rec, req)
	rURL, _ := url.Parse(replacement.ts.URL)
	if !strings.Contains(rec.Body.String(), rURL.Host) {
		t.Errorf("page served by %q, want replacement %s", rec.Body.String(), rURL.Host)
	}
}

func TestClusterHealthAggregates(t *testing.T) {
	fakes := []*fakeBackend{newFakeBackend(t), newFakeBackend(t)}
	fakes[0].mu.Lock()
	fakes[0].healthz.Users = 3
	fakes[0].healthz.Reports = 10
	fakes[0].healthz.OpenBreakers = []string{"x.example"}
	fakes[0].mu.Unlock()
	fakes[1].mu.Lock()
	fakes[1].healthz.Users = 4
	fakes[1].healthz.Reports = 7
	fakes[1].healthz.DegradedProviders = []string{"y.example"}
	fakes[1].mu.Unlock()
	gw := newTestGateway(t, fakes, nil)
	gw.ProbeOnce()

	rec := httptest.NewRecorder()
	gw.ServeHTTP(rec, httptest.NewRequest("GET", origin.HealthzPathV1, nil))
	var ch gateway.ClusterHealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &ch); err != nil {
		t.Fatal(err)
	}
	if ch.Status != "ok" || ch.Users != 7 || ch.Reports != 17 {
		t.Errorf("aggregate = %s/%d users/%d reports, want ok/7/17", ch.Status, ch.Users, ch.Reports)
	}
	if len(ch.OpenBreakers) != 1 || len(ch.DegradedProviders) != 1 {
		t.Errorf("unions = %v / %v", ch.OpenBreakers, ch.DegradedProviders)
	}

	// A dead backend degrades the aggregate status.
	fakes[1].setDown(true)
	for i := 0; i < 5; i++ {
		gw.ProbeOnce()
	}
	rec = httptest.NewRecorder()
	gw.ServeHTTP(rec, httptest.NewRequest("GET", origin.HealthzPathV1, nil))
	ch = gateway.ClusterHealthResponse{}
	if err := json.Unmarshal(rec.Body.Bytes(), &ch); err != nil {
		t.Fatal(err)
	}
	if ch.Status != "degraded" {
		t.Errorf("status with dead backend = %s, want degraded", ch.Status)
	}
}
