package gateway_test

// Node-loss chaos: a real three-backend fleet (full engine + origin stacks)
// plus standby behind the gateway, with real instrumented clients browsing
// through it. One backend is killed mid-traffic; the scenario asserts the
// whole robustness story against injected ground truth:
//
//   - traffic reroutes within the health-probe budget with zero 5xx,
//   - the dead node's replacement rehydrates from the gateway's shipped
//     OAKSNAP2 snapshot (state source "shipped", activations preserved),
//   - a provider kill detected by one backend's breaker is broadcast
//     fleet-wide: recall 1.0 (every live node quarantines it) and precision
//     1.0 (nothing else is quarantined) against the injected fault.
//
// Run with the race detector; scripts/verify.sh smokes it as
// `go test -race -run TestNodeLossChaos ./internal/gateway`.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"oak"
	"oak/internal/core"
	"oak/internal/gateway"
	"oak/internal/origin"
)

// nodeChaosHost is one logical provider whose latency and liveness switch
// atomically mid-run.
type nodeChaosHost struct {
	ts      *httptest.Server
	delayMs atomic.Int64
	dead    atomic.Bool
}

func newNodeChaosHost(t *testing.T, delay time.Duration) *nodeChaosHost {
	t.Helper()
	h := &nodeChaosHost{}
	h.delayMs.Store(int64(delay / time.Millisecond))
	h.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(time.Duration(h.delayMs.Load()) * time.Millisecond)
		if h.dead.Load() {
			http.Error(w, "provider down", http.StatusInternalServerError)
			return
		}
		_, _ = w.Write(make([]byte, 512))
	}))
	t.Cleanup(h.ts.Close)
	return h
}

func (h *nodeChaosHost) addr(t *testing.T) string {
	t.Helper()
	u, err := url.Parse(h.ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return u.Host
}

const nodeLossPage = `<html>
<script src="http://s1.com/jquery.js"></script>
<img src="http://a.example/a.png">
<img src="http://b.example/b.png">
<img src="http://c.example/c.png">
</html>`

func nodeLossRule(t *testing.T) *oak.Rule {
	t.Helper()
	rs, err := oak.ParseRulesJSON([]byte(`[{
		"id":"jquery","type":2,
		"default":"<script src=\"http://s1.com/jquery.js\"></script>",
		"alternatives":["<script src=\"http://s2.net/jquery.js\"></script>"],
		"scope":"*","ttlMillis":0
	}]`))
	if err != nil {
		t.Fatal(err)
	}
	return rs[0]
}

// oakNode is one full backend stack: engine, origin server, listener.
type oakNode struct {
	engine *oak.Engine
	ts     *httptest.Server
}

func newOakNode(t *testing.T) *oakNode {
	t.Helper()
	engine, err := oak.NewEngine([]*oak.Rule{nodeLossRule(t)},
		oak.WithGuard(oak.GuardConfig{
			TripThreshold:    3,
			OpenFor:          30 * time.Second, // stays open for the whole test
			HalfOpenCanaries: 1,
			CloseAfter:       1,
			PanicThreshold:   2,
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { engine.Close() })
	server := oak.NewServer(engine)
	server.SetPage("/index.html", nodeLossPage)
	ts := httptest.NewServer(server)
	t.Cleanup(ts.Close)
	return &oakNode{engine: engine, ts: ts}
}

// gwPageAs fetches /index.html through the gateway as the given user.
func gwPageAs(t *testing.T, gwURL, user string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, gwURL+"/index.html", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.AddCookie(&http.Cookie{Name: oak.CookieName, Value: user})
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, string(body)
}

// usersForArc finds n distinct user IDs owned by arc i of a 3-way split.
func usersForArc(t *testing.T, i, n int) []string {
	t.Helper()
	ranges := core.EqualRanges(3)
	var out []string
	for s := 0; len(out) < n && s < 1000000; s++ {
		uid := fmt.Sprintf("chaos-u%d-%d", i, s)
		if core.RangeFor(uid, ranges) == i {
			out = append(out, uid)
		}
	}
	if len(out) < n {
		t.Fatalf("could not find %d users for arc %d", n, i)
	}
	return out
}

func TestNodeLossChaos(t *testing.T) {
	// Injected ground truth, provider side: s1.com is the chronically slow
	// default every user migrates away from; s2.net is the fast alternate
	// that will be killed in phase 4.
	s1 := newNodeChaosHost(t, 60*time.Millisecond)
	s2 := newNodeChaosHost(t, 5*time.Millisecond)
	bystA := newNodeChaosHost(t, 5*time.Millisecond)
	bystB := newNodeChaosHost(t, 10*time.Millisecond)
	bystC := newNodeChaosHost(t, 15*time.Millisecond)
	hosts := map[string]string{
		"s1.com":    s1.addr(t),
		"s2.net":    s2.addr(t),
		"a.example": bystA.addr(t),
		"b.example": bystB.addr(t),
		"c.example": bystC.addr(t),
	}

	// The fleet: three range-owning backends plus a standby.
	nodes := []*oakNode{newOakNode(t), newOakNode(t), newOakNode(t)}
	standby := newOakNode(t)
	gw, err := gateway.NewGateway(gateway.Config{
		Backends: []string{nodes[0].ts.URL, nodes[1].ts.URL, nodes[2].ts.URL},
		Standby:  standby.ts.URL,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	gwts := httptest.NewServer(gw)
	defer gwts.Close()
	gw.ProbeOnce()

	load := func(user string, seed int64) {
		t.Helper()
		c := &oak.Client{
			UserID: user,
			Resolve: func(host string) (string, bool) {
				addr, ok := hosts[host]
				return addr, ok
			},
			ObjectTimeout: 2 * time.Second,
			Retry:         oak.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
			Seed:          seed,
		}
		if _, _, err := c.LoadAndReport(gwts.URL, "/index.html"); err != nil {
			t.Fatalf("load as %s: %v", user, err)
		}
	}

	// Phase 1 — activate through the gateway: each arc's users browse, their
	// reports land on their owner backend, and everyone migrates onto the
	// s2.net alternate.
	arcUsers := [3][]string{}
	for i := range arcUsers {
		arcUsers[i] = usersForArc(t, i, 3)
	}
	seed := int64(1)
	for i, users := range arcUsers {
		for _, u := range users {
			load(u, seed)
			seed++
			if code, body := gwPageAs(t, gwts.URL, u); code != 200 || !strings.Contains(body, "s2.net") {
				t.Fatalf("phase 1: %s (arc %d) not activated via gateway (status %d):\n%s", u, i, code, body)
			}
		}
	}
	// Partitioning held: every backend holds exactly its own arc's users.
	for i, n := range nodes {
		if got := n.engine.Users(); got != len(arcUsers[i]) {
			t.Fatalf("phase 1: backend %d holds %d users, want %d", i, got, len(arcUsers[i]))
		}
	}
	if got := standby.engine.Users(); got != 0 {
		t.Fatalf("phase 1: standby absorbed %d users before any failure", got)
	}

	// Phase 2 — node loss. The gateway has polled snapshots; then backend 1
	// is killed mid-traffic. After the probe budget walks it to dead, a full
	// round of pages and reports must see zero 5xx: arc-1 traffic reroutes
	// to the standby.
	gw.ShipSnapshots()
	killedAt := time.Now()
	nodes[1].ts.Close()
	for i := 0; i < gateway.DefaultDeadThreshold; i++ {
		gw.ProbeOnce()
	}
	if st := gw.BackendStates(); st[1] != gateway.StateDead {
		t.Fatalf("phase 2: killed backend state = %v, want dead", st[1])
	}
	for _, users := range arcUsers {
		for _, u := range users {
			if code, _ := gwPageAs(t, gwts.URL, u); code >= 500 {
				t.Fatalf("phase 2: %s got %d after the probe window (want zero 5xx)", u, code)
			}
		}
	}
	for _, u := range arcUsers[1] {
		load(u, seed) // reports flow to the standby
		seed++
	}
	if got := standby.engine.Users(); got != len(arcUsers[1]) {
		t.Fatalf("phase 2: standby absorbed %d users, want %d", got, len(arcUsers[1]))
	}
	t.Logf("phase 2: time to reroute (kill -> dead + clean round): %v", time.Since(killedAt))

	// Phase 3 — replacement. A fresh node is rehydrated from the gateway's
	// stored OAKSNAP2 snapshot: the arc's users, activations included, come
	// back, and the node reports its state source as shipped.
	replacement := newOakNode(t)
	if err := gw.Replace(t.Context(), 1, replacement.ts.URL); err != nil {
		t.Fatalf("phase 3: replace: %v", err)
	}
	if got := replacement.engine.Users(); got != len(arcUsers[1]) {
		t.Fatalf("phase 3: replacement rehydrated %d users, want %d", got, len(arcUsers[1]))
	}
	var hz origin.HealthzResponse
	resp, err := http.Get(replacement.ts.URL + origin.HealthzPathV1)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hz.StateSource != "shipped" || hz.StateRecoveries != 1 {
		t.Fatalf("phase 3: replacement healthz state_source=%q recoveries=%d, want shipped/1", hz.StateSource, hz.StateRecoveries)
	}
	gw.ProbeOnce()
	for _, u := range arcUsers[1] {
		if code, body := gwPageAs(t, gwts.URL, u); code != 200 || !strings.Contains(body, "s2.net") {
			t.Fatalf("phase 3: %s lost activation across replacement (status %d):\n%s", u, code, body)
		}
	}

	// Phase 4 — fleet-wide mitigation. Ground truth: s2.net dies. Arc-0
	// users' reports trip backend 0's breaker organically; the control sweep
	// must broadcast the quarantine to every other live node. Recall 1.0:
	// all four live engines end with the breaker open. Precision 1.0:
	// nothing but s2.net is quarantined anywhere.
	s2.dead.Store(true)
	s2.delayMs.Store(25)
	faultAt := time.Now()
	const reportBudget = 10
	tripped := false
	for i := 0; i < reportBudget && !tripped; i++ {
		load(arcUsers[0][i%len(arcUsers[0])], seed)
		seed++
		tripped = len(nodes[0].engine.OpenBreakers()) > 0
	}
	if !tripped {
		t.Fatalf("phase 4: breaker never tripped on backend 0 within %d reports", reportBudget)
	}
	gw.ProbeOnce() // pick up the tripped breaker in healthz
	gw.ControlSweep()

	liveEngines := map[string]*oak.Engine{
		"backend0":    nodes[0].engine,
		"replacement": replacement.engine,
		"backend2":    nodes[2].engine,
		"standby":     standby.engine,
	}
	quarantined := 0
	for name, e := range liveEngines {
		open := e.OpenBreakers()
		if len(open) == 1 && open[0] == "s2.net" {
			quarantined++
		} else {
			t.Errorf("phase 4: %s OpenBreakers = %v, want [s2.net]", name, open)
		}
	}
	recall := float64(quarantined) / float64(len(liveEngines))
	t.Logf("phase 4: recall %.2f (%d/%d nodes quarantined s2.net), time to fleet-wide mitigation %v",
		recall, quarantined, len(liveEngines), time.Since(faultAt))
	if recall != 1.0 {
		t.Fatalf("phase 4: recall = %.2f, want 1.0", recall)
	}
	// The broadcast bulk-deactivates the provider everywhere: arc-2 users —
	// whose own backend never saw a bad report — are already off s2.net.
	for _, u := range arcUsers[2] {
		if code, body := gwPageAs(t, gwts.URL, u); code != 200 || strings.Contains(body, "s2.net") {
			t.Errorf("phase 4: %s still on dead s2.net after broadcast (status %d)", u, code)
		}
	}
	if m := nodes[2].engine.Metrics(); m.BulkDeactivations == 0 {
		t.Error("phase 4: broadcast did not bulk-deactivate on backend 2")
	}
}
