package gateway_test

// Gateway overhead benchmarks, driven by scripts/bench_gateway.sh into
// BENCH_gateway.json:
//
//   - BenchmarkReportDirect / BenchmarkReportViaGateway: the same report
//     POSTed straight at one oakd versus through the gateway's warm path
//     (healthy owner backend, no failover). Their ratio is the forwarding
//     overhead the cluster tier costs, gated at <= 1.25x.
//   - BenchmarkPageDirect / BenchmarkPageViaGateway: the page-serve
//     equivalents.
//   - BenchmarkReportFailover: the steady-state rerouted path — primary
//     probed dead, every request flowing to the standby — which is what
//     users pay between a node's death and its replacement.

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"oak"
	"oak/internal/gateway"
	"oak/internal/origin"
)

// benchReportBody is a paper-realistic report: 48 objects spread over a
// dozen servers, one of them badly slow. Real pages carry tens of objects
// (the paper's Figure 2 medians ~50), and the ratio the benchmark gates —
// gateway vs direct — is only meaningful on the payload size the system is
// built for.
func benchReportBody(user string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, `{"userId":%q,"page":"/index.html","entries":[`, user)
	for i := 0; i < 48; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		ms := 80 + (i*7)%120
		if i%12 == 9 {
			ms = 2500 // the under-performer
		}
		fmt.Fprintf(&sb, `{"url":"http://h%d.example/o%d.png","serverAddr":"10.0.%d.1","sizeBytes":4000,"durationMillis":%d}`,
			i%12, i, i%12, ms)
	}
	sb.WriteString("]}")
	return sb.String()
}

const benchPage = `<html><img src="http://slow.example/x.png"><img src="http://a.example/a.png"></html>`

func benchRule(b *testing.B) *oak.Rule {
	b.Helper()
	rs, err := oak.ParseRulesJSON([]byte(`[{
		"id":"swap","type":2,
		"default":"<img src=\"http://slow.example/x.png\">",
		"alternatives":["<img src=\"http://fast.example/x.png\">"],
		"scope":"*","ttlMillis":0
	}]`))
	if err != nil {
		b.Fatal(err)
	}
	return rs[0]
}

// benchNode builds one full backend stack.
func benchNode(b *testing.B) *httptest.Server {
	b.Helper()
	engine, err := oak.NewEngine([]*oak.Rule{benchRule(b)})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { engine.Close() })
	server := oak.NewServer(engine)
	server.SetPage("/index.html", benchPage)
	ts := httptest.NewServer(server)
	b.Cleanup(ts.Close)
	return ts
}

// postReports drives b.N concurrent report submissions at base — a gateway
// is a throughput tier, so the warm path is measured the way it is used:
// many clients at once — and reports reports/sec.
func postReports(b *testing.B, base string) {
	b.Helper()
	var uid atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		user := fmt.Sprintf("bench-user-%d", uid.Add(1))
		body := benchReportBody(user)
		client := &http.Client{}
		for pb.Next() {
			req, err := http.NewRequest(http.MethodPost, base+origin.ReportPathV1, strings.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/json")
			req.AddCookie(&http.Cookie{Name: oak.CookieName, Value: user})
			resp, err := client.Do(req)
			if err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusNoContent {
				b.Fatalf("status %d", resp.StatusCode)
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "reports/sec")
}

// getPages drives b.N concurrent page fetches at base and reports
// pages/sec.
func getPages(b *testing.B, base string) {
	b.Helper()
	var uid atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		user := fmt.Sprintf("bench-user-%d", uid.Add(1))
		client := &http.Client{}
		for pb.Next() {
			req, err := http.NewRequest(http.MethodGet, base+"/index.html", nil)
			if err != nil {
				b.Fatal(err)
			}
			req.AddCookie(&http.Cookie{Name: oak.CookieName, Value: user})
			resp, err := client.Do(req)
			if err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pages/sec")
}

// postBatches drives b.N NDJSON batch submissions (batchLines reports per
// POST, one user per line) and reports reports/sec — the high-throughput
// submission path, where the gateway's per-request hop amortises across the
// whole batch.
const batchLines = 16

func postBatches(b *testing.B, base string) {
	b.Helper()
	var uid atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		seq := uid.Add(1)
		lines := make([]string, batchLines)
		for i := range lines {
			lines[i] = benchReportBody(fmt.Sprintf("bench-batch-%d-%d", seq, i))
		}
		body := strings.Join(lines, "\n")
		client := &http.Client{}
		for pb.Next() {
			req, err := http.NewRequest(http.MethodPost, base+origin.ReportPathV1, strings.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/x-ndjson")
			resp, err := client.Do(req)
			if err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N*batchLines)/b.Elapsed().Seconds(), "reports/sec")
}

func BenchmarkReportDirect(b *testing.B) {
	node := benchNode(b)
	postReports(b, node.URL)
}

func BenchmarkBatchDirect(b *testing.B) {
	node := benchNode(b)
	postBatches(b, node.URL)
}

func BenchmarkBatchViaGateway(b *testing.B) {
	node := benchNode(b)
	gw, err := gateway.NewGateway(gateway.Config{Backends: []string{node.URL}})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(gw.Close)
	gwts := httptest.NewServer(gw)
	b.Cleanup(gwts.Close)
	postBatches(b, gwts.URL)
}

func BenchmarkReportViaGateway(b *testing.B) {
	node := benchNode(b)
	gw, err := gateway.NewGateway(gateway.Config{Backends: []string{node.URL}})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(gw.Close)
	gwts := httptest.NewServer(gw)
	b.Cleanup(gwts.Close)
	postReports(b, gwts.URL)
}

func BenchmarkPageDirect(b *testing.B) {
	node := benchNode(b)
	getPages(b, node.URL)
}

func BenchmarkPageViaGateway(b *testing.B) {
	node := benchNode(b)
	gw, err := gateway.NewGateway(gateway.Config{Backends: []string{node.URL}})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(gw.Close)
	gwts := httptest.NewServer(gw)
	b.Cleanup(gwts.Close)
	getPages(b, gwts.URL)
}

func BenchmarkReportFailover(b *testing.B) {
	// The range owner is dead (probed past DeadThreshold); every report
	// reroutes to the standby.
	deadTS := httptest.NewServer(http.NotFoundHandler())
	deadTS.Close()
	standby := benchNode(b)
	gw, err := gateway.NewGateway(gateway.Config{
		Backends: []string{deadTS.URL},
		Standby:  standby.URL,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(gw.Close)
	for i := 0; i < gateway.DefaultDeadThreshold; i++ {
		gw.ProbeOnce()
	}
	if st := gw.BackendStates(); st[0] != gateway.StateDead {
		b.Fatalf("backend state = %v, want dead", st[0])
	}
	gwts := httptest.NewServer(gw)
	b.Cleanup(gwts.Close)
	postReports(b, gwts.URL)
}
