package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"oak/internal/core"
	"oak/internal/origin"
)

// Cluster control channel: guard and population discoveries are per-node —
// each backend only sees the reports its own users submit — but the
// conclusion "this provider is bad" is population-wide truth. The control
// sweep re-broadcasts it:
//
//   - Breaker trips use rising-edge memory. When a provider first appears
//     in any backend's open-breaker set, the gateway force-opens the
//     provider's breaker (POST /oak/v1/guard/quarantine) on every other
//     live backend, which bulk-rolls-back its activations there too. No
//     release broadcast is needed: a force-opened breaker carries the same
//     cool-down → half-open → canary path as an organic trip, so every
//     node re-admits the provider on its own evidence. The memory clears
//     when no backend reports the breaker open anymore, re-arming the edge
//     for the next trip.
//   - Degraded episodes are state-driven. An organic (non-manual) episode
//     on one backend is mirrored as a manual MarkDegraded on every live
//     backend that has no episode of its own; because the mirror is
//     manual, it is excluded from the organic union, so mirrors never feed
//     back. When the last organic episode recovers, the gateway clears
//     exactly the mirrors it created.

// postControl POSTs one provider control verb to a backend. A 404 is not
// an error: the backend was built without that subsystem.
func (g *Gateway) postControl(b *backend, path, provider string) error {
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.ProbeTimeout)
	defer cancel()
	u := b.addr + path + "?provider=" + url.QueryEscape(provider)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, nil)
	if err != nil {
		return err
	}
	resp, err := g.httpc.Do(req)
	if err != nil {
		return err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode >= 400 && resp.StatusCode != http.StatusNotFound {
		return fmt.Errorf("control %s status %d", path, resp.StatusCode)
	}
	return nil
}

// liveBackends returns every backend (standby included) that is not dead
// and has answered at least one probe.
func (g *Gateway) liveBackends() []*backend {
	var out []*backend
	for _, b := range g.all() {
		st, _, _, hz := b.snapshotState()
		if st != StateDead && hz != nil {
			out = append(out, b)
		}
	}
	return out
}

// ControlSweep runs one breaker + degraded broadcast pass, synchronously.
// The background loop calls it after every probe cycle; tests call it
// directly.
func (g *Gateway) ControlSweep() {
	live := g.liveBackends()
	g.sweepBreakers(live)
	g.sweepDegraded(live)
}

// sweepBreakers mirrors newly tripped breakers fleet-wide.
func (g *Gateway) sweepBreakers(live []*backend) {
	openOn := make(map[string]map[*backend]struct{})
	for _, b := range live {
		_, _, _, hz := b.snapshotState()
		for _, p := range hz.OpenBreakers {
			if openOn[p] == nil {
				openOn[p] = make(map[*backend]struct{})
			}
			openOn[p][b] = struct{}{}
		}
	}

	g.ctlMu.Lock()
	var broadcast []string
	for p := range openOn {
		if _, seen := g.seenBreakers[p]; !seen {
			g.seenBreakers[p] = struct{}{}
			broadcast = append(broadcast, p)
		}
	}
	for p := range g.seenBreakers {
		if _, still := openOn[p]; !still {
			// Every backend's breaker self-healed: re-arm the edge.
			delete(g.seenBreakers, p)
		}
	}
	g.ctlMu.Unlock()

	for _, p := range broadcast {
		g.breakerBroadcasts.Inc()
		for _, b := range live {
			if _, has := openOn[p][b]; has {
				continue // this backend's own trip started the broadcast
			}
			if err := g.postControl(b, origin.GuardQuarantinePathV1, p); err != nil {
				g.logf("gateway: breaker broadcast %s to %s: %v", p, b.addr, err)
				continue
			}
			g.logf("gateway: breaker broadcast: quarantined %s on %s", p, b.addr)
		}
	}
}

// fetchPopulation GETs one backend's population status; ok is false when
// the backend lacks the subsystem or cannot be decoded.
func (g *Gateway) fetchPopulation(b *backend) (core.PopulationStatus, bool) {
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.addr+origin.PopulationPathV1, nil)
	if err != nil {
		return core.PopulationStatus{}, false
	}
	resp, err := g.httpc.Do(req)
	if err != nil {
		return core.PopulationStatus{}, false
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	_ = resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		return core.PopulationStatus{}, false
	}
	var ps core.PopulationStatus
	if err := json.Unmarshal(body, &ps); err != nil {
		return core.PopulationStatus{}, false
	}
	return ps, true
}

// sweepDegraded mirrors organic degraded episodes fleet-wide and clears
// the mirrors it created once the organic episodes recover.
func (g *Gateway) sweepDegraded(live []*backend) {
	organicOn := make(map[string]map[*backend]struct{}) // provider → backends with organic episode
	degradedOn := make(map[*backend]map[string]struct{})
	var popLive []*backend // backends with the population subsystem
	for _, b := range live {
		ps, ok := g.fetchPopulation(b)
		if !ok {
			continue
		}
		popLive = append(popLive, b)
		degradedOn[b] = make(map[string]struct{}, len(ps.Degraded))
		for _, d := range ps.Degraded {
			degradedOn[b][d.Provider] = struct{}{}
			if !d.Manual {
				if organicOn[d.Provider] == nil {
					organicOn[d.Provider] = make(map[*backend]struct{})
				}
				organicOn[d.Provider][b] = struct{}{}
			}
		}
	}

	// Mirror each organic episode onto every population-enabled backend
	// that has no episode of its own (state-driven, so a replaced backend
	// is re-marked on the next sweep).
	for p := range organicOn {
		for _, b := range popLive {
			if _, has := degradedOn[b][p]; has {
				continue
			}
			if err := g.postControl(b, origin.PopulationDegradePathV1, p); err != nil {
				g.logf("gateway: degrade broadcast %s to %s: %v", p, b.addr, err)
				continue
			}
			g.degradeBroadcasts.Inc()
			g.ctlMu.Lock()
			if g.markedOn[p] == nil {
				g.markedOn[p] = make(map[*backend]struct{})
			}
			g.markedOn[p][b] = struct{}{}
			g.ctlMu.Unlock()
			g.logf("gateway: degrade broadcast: marked %s on %s", p, b.addr)
		}
	}

	// Clear our mirrors for providers whose organic episodes all recovered.
	g.ctlMu.Lock()
	toClear := make(map[string][]*backend)
	for p, marks := range g.markedOn {
		if _, still := organicOn[p]; still {
			continue
		}
		for b := range marks {
			toClear[p] = append(toClear[p], b)
		}
		delete(g.markedOn, p)
	}
	g.ctlMu.Unlock()
	for p, bs := range toClear {
		for _, b := range bs {
			if err := g.postControl(b, origin.PopulationClearPathV1, p); err != nil {
				g.logf("gateway: degrade clear %s on %s: %v", p, b.addr, err)
				continue
			}
			g.logf("gateway: degrade clear: released %s on %s", p, b.addr)
		}
	}
}
