package gateway

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"oak/internal/core"
	"oak/internal/origin"
)

// Snapshot shipping: the gateway periodically polls each live backend's
// checksummed OAKSNAP2 snapshot (GET /oak/v1/state) and keeps the latest
// per backend. When a backend dies, Replace ships that snapshot to a fresh
// process — the replacement rehydrates the dead node's learned state
// without ever touching the dead node's disk. A backend that died before
// the first poll is instead seeded with the standby's per-user-range
// export: the reports the standby absorbed while covering the dead range.

// Cluster administration endpoints served by the gateway itself (v1-only).
const (
	// ClusterPathV1 serves the detailed fleet view: per-backend state
	// machine position, last healthz, snapshot freshness, range ownership.
	ClusterPathV1 = origin.V1Prefix + "/cluster"
	// ClusterReplacePathV1 replaces a dead backend (POST
	// ?backend=<index>&addr=<base-url>).
	ClusterReplacePathV1 = origin.V1Prefix + "/cluster/replace"
	// ClusterDrainPathV1 pins a backend draining ahead of planned
	// replacement (POST ?backend=<index>); ?undrain=1 releases it.
	ClusterDrainPathV1 = origin.V1Prefix + "/cluster/drain"
)

// fetchState GETs a backend's snapshot, optionally restricted to one
// hash-ring arc.
func (g *Gateway) fetchState(b *backend, rng *core.HashRange) ([]byte, error) {
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.ForwardTimeout)
	defer cancel()
	u := b.addr + origin.StatePathV1
	if rng != nil {
		u += fmt.Sprintf("?lo=%d&hi=%d", rng.Lo, rng.Hi)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := g.httpc.Do(req)
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxForwardBytes))
	_ = resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("state export status %d", resp.StatusCode)
	}
	return data, nil
}

// postState POSTs a snapshot to a node (addr is a base URL, not
// necessarily a tracked backend — the replacement target is not in the
// fleet yet). A nil range ships the whole snapshot (the receiver marks its
// state source "shipped"); a range splices one arc in.
func (g *Gateway) postState(ctx context.Context, addr string, rng *core.HashRange, data []byte) error {
	u := addr + origin.StatePathV1
	if rng != nil {
		u += fmt.Sprintf("?lo=%d&hi=%d", rng.Lo, rng.Hi)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := g.httpc.Do(req)
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("state import status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	return nil
}

// ShipSnapshots polls one snapshot from every backend that is not dead,
// synchronously. The background loop calls it on SnapshotInterval; tests
// call it directly. Draining backends are still polled — a draining node
// that answers donates fresher state for its replacement.
func (g *Gateway) ShipSnapshots() {
	for _, b := range g.backends {
		b.mu.Lock()
		state := b.state
		b.mu.Unlock()
		if state == StateDead {
			continue
		}
		data, err := g.fetchState(b, nil)
		if err != nil {
			continue // the prober owns failure accounting
		}
		b.mu.Lock()
		b.snapshot = data
		b.snapshotAt = time.Now()
		b.mu.Unlock()
	}
}

// Replace swaps backend i's address for a fresh process and rehydrates it:
// the latest polled OAKSNAP2 snapshot is shipped whole (the replacement's
// state source becomes "shipped"), or — when the backend died before any
// snapshot was polled — the standby donates a per-user-range export of the
// dead arc, the reports it absorbed while covering for the dead node. The
// backend re-enters the fleet healthy; the next probe cycle re-verifies.
func (g *Gateway) Replace(ctx context.Context, i int, newAddr string) error {
	if i < 0 || i >= len(g.backends) {
		return fmt.Errorf("gateway: no backend %d", i)
	}
	addr := normalizeAddr(newAddr)
	if addr == "" {
		return fmt.Errorf("gateway: empty replacement address")
	}
	b := g.backends[i]
	b.mu.Lock()
	snap := b.snapshot
	b.mu.Unlock()

	switch {
	case len(snap) > 0:
		if err := g.postState(ctx, addr, nil, snap); err != nil {
			return fmt.Errorf("gateway: ship snapshot to %s: %w", addr, err)
		}
	case g.standby != nil && healthyNow(g.standby):
		rng := g.ranges[i]
		data, err := g.fetchState(g.standby, &rng)
		if err != nil {
			return fmt.Errorf("gateway: no stored snapshot and standby range export failed: %w", err)
		}
		if err := g.postState(ctx, addr, &rng, data); err != nil {
			return fmt.Errorf("gateway: ship standby range to %s: %w", addr, err)
		}
	default:
		// Nothing to rehydrate from; the replacement starts fresh. Still a
		// valid replacement — the fleet heals forward.
		g.logf("gateway: replacing %s with no state to ship", b.addr)
	}

	b.mu.Lock()
	old := b.addr
	b.addr = addr
	b.state = StateHealthy
	b.fails = 0
	b.drained = false
	b.lastErr = ""
	b.healthz = nil
	b.mu.Unlock()
	g.replacements.Inc()
	g.logf("gateway: replaced backend %d: %s -> %s", i, old, addr)
	return nil
}

// handleReplace is the HTTP form of Replace.
func (g *Gateway) handleReplace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	i, err := strconv.Atoi(q.Get("backend"))
	if err != nil {
		http.Error(w, "backend parameter must be an index", http.StatusBadRequest)
		return
	}
	addr := q.Get("addr")
	if addr == "" {
		http.Error(w, "addr parameter required", http.StatusBadRequest)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), g.cfg.ForwardTimeout)
	defer cancel()
	if err := g.Replace(ctx, i, addr); err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleDrain pins (or, with ?undrain=1, releases) a backend's draining
// state.
func (g *Gateway) handleDrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	i, err := strconv.Atoi(q.Get("backend"))
	if err != nil || i < 0 || i >= len(g.backends) {
		http.Error(w, "backend parameter must be a valid index", http.StatusBadRequest)
		return
	}
	if q.Get("undrain") == "1" {
		g.Undrain(i)
	} else {
		g.Drain(i)
	}
	w.WriteHeader(http.StatusNoContent)
}
