package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"oak/internal/origin"
)

// Health probing: every probe cycle GETs each backend's /oak/v1/healthz.
// Success resets the failure streak and (unless an operator pinned the
// backend draining) restores it to healthy — a node that comes back is
// readmitted automatically. Consecutive failures walk the state machine
// down: FailThreshold → unhealthy, DrainThreshold → draining,
// DeadThreshold → dead.

// probeBackend fetches one backend's healthz under the probe timeout.
func (g *Gateway) probeBackend(b *backend) (*origin.HealthzResponse, error) {
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.addr+origin.HealthzPathV1, nil)
	if err != nil {
		return nil, err
	}
	resp, err := g.httpc.Do(req)
	if err != nil {
		return nil, err
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	_ = resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("healthz status %d", resp.StatusCode)
	}
	var hz origin.HealthzResponse
	if err := json.Unmarshal(body, &hz); err != nil {
		return nil, fmt.Errorf("decode healthz: %w", err)
	}
	return &hz, nil
}

// noteProbe applies one probe outcome to the backend's state machine,
// returning the transition (old != new) for logging.
func (g *Gateway) noteProbe(b *backend, hz *origin.HealthzResponse, err error) (old, now BackendState) {
	b.mu.Lock()
	defer b.mu.Unlock()
	old = b.state
	if err == nil {
		b.fails = 0
		b.lastErr = ""
		b.healthz = hz
		b.lastSeen = time.Now()
		if !b.drained {
			b.state = StateHealthy
		} else {
			b.state = StateDraining
		}
		return old, b.state
	}
	b.fails++
	b.lastErr = err.Error()
	switch {
	case b.fails >= g.cfg.DeadThreshold:
		b.state = StateDead
	case b.fails >= g.cfg.DrainThreshold || b.drained:
		b.state = StateDraining
	case b.fails >= g.cfg.FailThreshold:
		b.state = StateUnhealthy
	}
	return old, b.state
}

// ProbeOnce probes every backend (and the standby) once, synchronously.
// The background loop calls it on ProbeInterval; tests call it directly
// for deterministic state-machine transitions.
func (g *Gateway) ProbeOnce() {
	for _, b := range g.all() {
		hz, err := g.probeBackend(b)
		if old, now := g.noteProbe(b, hz, err); old != now {
			g.logf("gateway: backend %s %s -> %s (%v)", b.addr, old, now, err)
		}
	}
	g.probeCycles.Inc()
}

// Drain pins backend i at draining: it stops taking traffic but keeps
// being polled for snapshots — the operator path ahead of a planned
// replacement. Out-of-range indexes are ignored.
func (g *Gateway) Drain(i int) {
	if i < 0 || i >= len(g.backends) {
		return
	}
	b := g.backends[i]
	b.mu.Lock()
	b.drained = true
	if b.state != StateDead {
		b.state = StateDraining
	}
	b.mu.Unlock()
	g.logf("gateway: backend %s drained by operator", b.addr)
}

// Undrain releases an operator drain; the next successful probe restores
// the backend to healthy.
func (g *Gateway) Undrain(i int) {
	if i < 0 || i >= len(g.backends) {
		return
	}
	b := g.backends[i]
	b.mu.Lock()
	b.drained = false
	b.mu.Unlock()
}

// BackendStates reports each backend's current state, in backend order
// (the standby, when configured, is not included).
func (g *Gateway) BackendStates() []BackendState {
	out := make([]BackendState, len(g.backends))
	for i, b := range g.backends {
		out[i], _, _, _ = b.snapshotState()
	}
	return out
}
