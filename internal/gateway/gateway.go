// Package gateway provides Oak's horizontal-scale tier: an HTTP gateway
// that partitions the user population across N oakd backends by the same
// 32-bit FNV-1a user hash the engine already uses for shard striping
// (core.UserHash), so each user's reports and page serves always land on
// the backend that owns their profile.
//
// The gateway is robustness-first:
//
//   - Per-backend health probing drives a healthy → unhealthy → draining →
//     dead state machine; requests for a struggling backend fail over to a
//     designated standby (or the next healthy backend in ring order).
//   - A cluster control channel re-broadcasts one node's discoveries fleet
//     wide: a guard breaker trip on one backend force-opens the provider's
//     breaker (and bulk-rolls-back its activations) on every other backend,
//     and an organic population degraded episode is mirrored as a manual
//     MarkDegraded everywhere else.
//   - Node replacement ships the latest checksummed OAKSNAP2 snapshot the
//     gateway has polled from the dead backend to a fresh process, then
//     tops it up with a per-user-range export donated by the standby — the
//     reports the standby absorbed while the primary was down.
//
// Forwarding rides the oak client's existing retry machinery
// (client.HTTPClient.SubmitBytes): exponential backoff with jitter,
// Retry-After honoured, the whole exchange bounded by a context deadline.
package gateway

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"oak/internal/client"
	"oak/internal/core"
	"oak/internal/obs"
	"oak/internal/origin"
)

// BackendState is one backend's position in the gateway's health state
// machine.
type BackendState string

const (
	// StateHealthy: probes succeed; the backend takes its range's traffic.
	StateHealthy BackendState = "healthy"
	// StateUnhealthy: FailThreshold consecutive probes failed. The backend
	// still gets first shot at its range's traffic, but every request is
	// backstopped by failover.
	StateUnhealthy BackendState = "unhealthy"
	// StateDraining: DrainThreshold consecutive probes failed, or an
	// operator drained the backend ahead of replacement. Traffic goes
	// straight to failover; snapshot polling still tries the backend (a
	// draining node that answers can donate fresher state).
	StateDraining BackendState = "draining"
	// StateDead: DeadThreshold consecutive probes failed. The backend gets
	// no traffic and no polling; it is a replacement candidate.
	StateDead BackendState = "dead"
)

// Defaults for Config's zero fields.
const (
	DefaultProbeInterval    = 500 * time.Millisecond
	DefaultProbeTimeout     = 2 * time.Second
	DefaultForwardTimeout   = 15 * time.Second
	DefaultFailThreshold    = 2
	DefaultDrainThreshold   = 3
	DefaultDeadThreshold    = 5
	DefaultSnapshotInterval = 2 * time.Second
)

// Config configures a Gateway.
type Config struct {
	// Backends are the oakd base URLs (host:port or http://host:port), one
	// per partition; backend i owns EqualRanges(len(Backends))[i] of the
	// user-hash ring. At least one is required.
	Backends []string
	// Standby, when set, is an extra oakd that owns no range: it is the
	// preferred failover target for every partition and the donor of
	// per-user-range state when a dead backend is replaced.
	Standby string
	// ProbeInterval is the health-probe period (default
	// DefaultProbeInterval). The control sweep (breaker/degrade broadcast)
	// runs on the same cadence.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe or control request (default
	// DefaultProbeTimeout).
	ProbeTimeout time.Duration
	// ForwardTimeout bounds one forwarded exchange, retries included
	// (default DefaultForwardTimeout).
	ForwardTimeout time.Duration
	// FailThreshold / DrainThreshold / DeadThreshold are the consecutive
	// probe-failure counts that move a backend to unhealthy, draining and
	// dead (defaults 2 / 3 / 5; they are clamped to be non-decreasing).
	FailThreshold  int
	DrainThreshold int
	DeadThreshold  int
	// SnapshotInterval is how often the gateway polls each live backend's
	// OAKSNAP2 snapshot for replacement readiness (default
	// DefaultSnapshotInterval).
	SnapshotInterval time.Duration
	// Retry tunes the forwarding retry schedule (client.RetryPolicy
	// defaults apply to zero fields).
	Retry client.RetryPolicy
	// HTTP is the transport for every gateway request; nil builds a client
	// with keep-alives shared across all backends.
	HTTP *http.Client
	// Logf, when set, receives gateway decision logging (state transitions,
	// failovers, broadcasts, replacements).
	Logf func(format string, args ...any)
}

// backend is one oakd process the gateway fronts.
type backend struct {
	mu    sync.Mutex
	addr  string // base URL, normalised to http://host:port
	state BackendState
	// drained pins the state machine at draining (operator Drain); cleared
	// by Replace and Undrain.
	drained bool
	// fails counts consecutive probe failures.
	fails    int
	lastErr  string
	lastSeen time.Time
	// healthz is the most recent successfully decoded probe response.
	healthz *origin.HealthzResponse
	// snapshot is the latest OAKSNAP2 snapshot polled from this backend,
	// kept for node replacement.
	snapshot   []byte
	snapshotAt time.Time
}

func (b *backend) snapshotState() (state BackendState, fails int, lastErr string, hz *origin.HealthzResponse) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.fails, b.lastErr, b.healthz
}

// Gateway fronts a fleet of oakd backends. Create with NewGateway, start
// the background loops with Start, and serve it as an http.Handler.
type Gateway struct {
	cfg      Config
	ranges   []core.HashRange
	backends []*backend
	standby  *backend // nil without Config.Standby
	fwd      *client.HTTPClient
	httpc    *http.Client
	logf     func(format string, args ...any)
	started  time.Time
	nextID   atomic.Uint64

	// Control-channel memory (guarded by ctlMu): providers whose breaker
	// trip has already been broadcast, and the backends each degraded
	// provider was manually marked on (so the mark can be cleared when the
	// organic episode recovers).
	ctlMu        sync.Mutex
	seenBreakers map[string]struct{}
	markedOn     map[string]map[*backend]struct{}

	// Counters for the cluster metrics endpoint.
	forwardedReports  obs.Counter
	forwardedPages    obs.Counter
	failovers         obs.Counter
	probeCycles       obs.Counter
	breakerBroadcasts obs.Counter
	degradeBroadcasts obs.Counter
	replacements      obs.Counter

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

var _ http.Handler = (*Gateway)(nil)

// normalizeAddr turns host:port into a base URL and strips trailing
// slashes.
func normalizeAddr(addr string) string {
	addr = strings.TrimSuffix(strings.TrimSpace(addr), "/")
	if addr == "" {
		return addr
	}
	if !strings.HasPrefix(addr, "http://") && !strings.HasPrefix(addr, "https://") {
		addr = "http://" + addr
	}
	return addr
}

// NewGateway builds a gateway over the configured backends. Background
// loops (probing, control sweep, snapshot polling) do not run until Start;
// a gateway used without Start still forwards, which suits tests that
// drive ProbeOnce/ControlSweep/ShipSnapshots deterministically.
func NewGateway(cfg Config) (*Gateway, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("gateway: no backends configured")
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = DefaultProbeInterval
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = DefaultProbeTimeout
	}
	if cfg.ForwardTimeout <= 0 {
		cfg.ForwardTimeout = DefaultForwardTimeout
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = DefaultFailThreshold
	}
	if cfg.DrainThreshold < cfg.FailThreshold {
		cfg.DrainThreshold = cfg.FailThreshold + 1
	}
	if cfg.DeadThreshold < cfg.DrainThreshold {
		cfg.DeadThreshold = cfg.DrainThreshold + 2
	}
	if cfg.SnapshotInterval <= 0 {
		cfg.SnapshotInterval = DefaultSnapshotInterval
	}
	httpc := cfg.HTTP
	if httpc == nil {
		httpc = &http.Client{Timeout: 30 * time.Second}
	}
	g := &Gateway{
		cfg:          cfg,
		ranges:       core.EqualRanges(len(cfg.Backends)),
		httpc:        httpc,
		fwd:          &client.HTTPClient{HTTP: httpc, Retry: cfg.Retry},
		logf:         cfg.Logf,
		started:      time.Now(),
		seenBreakers: make(map[string]struct{}),
		markedOn:     make(map[string]map[*backend]struct{}),
		stop:         make(chan struct{}),
	}
	if g.logf == nil {
		g.logf = func(string, ...any) {}
	}
	for _, addr := range cfg.Backends {
		a := normalizeAddr(addr)
		if a == "" {
			return nil, fmt.Errorf("gateway: empty backend address")
		}
		g.backends = append(g.backends, &backend{addr: a, state: StateHealthy})
	}
	if s := normalizeAddr(cfg.Standby); s != "" {
		g.standby = &backend{addr: s, state: StateHealthy}
	}
	return g, nil
}

// Start launches the background loops: health probing + control sweep on
// ProbeInterval, snapshot polling on SnapshotInterval. Stop them with
// Close.
func (g *Gateway) Start() {
	g.wg.Add(2)
	go func() {
		defer g.wg.Done()
		t := time.NewTicker(g.cfg.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-g.stop:
				return
			case <-t.C:
				g.ProbeOnce()
				g.ControlSweep()
			}
		}
	}()
	go func() {
		defer g.wg.Done()
		t := time.NewTicker(g.cfg.SnapshotInterval)
		defer t.Stop()
		for {
			select {
			case <-g.stop:
				return
			case <-t.C:
				g.ShipSnapshots()
			}
		}
	}()
}

// Close stops the background loops. Safe to call more than once; safe on a
// gateway that never Started.
func (g *Gateway) Close() {
	g.stopOnce.Do(func() { close(g.stop) })
	g.wg.Wait()
}

// all returns every backend including the standby.
func (g *Gateway) all() []*backend {
	if g.standby == nil {
		return g.backends
	}
	return append(append([]*backend(nil), g.backends...), g.standby)
}

// ownerIndex returns which backend's range owns the user. An empty user ID
// still hashes deterministically, so identity-less reports have a stable
// home.
func (g *Gateway) ownerIndex(userID string) int {
	if i := core.RangeFor(userID, g.ranges); i >= 0 {
		return i
	}
	return 0 // unreachable with EqualRanges, which covers the ring
}

// routable says whether a backend should receive first-shot traffic.
func routable(b *backend) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == StateHealthy || b.state == StateUnhealthy
}

// healthyNow says whether a backend is fully healthy.
func healthyNow(b *backend) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == StateHealthy
}

// failoverFor picks where traffic for backend i goes when i itself cannot
// take it: the standby when one is configured and healthy, else the next
// healthy backend in ring order, else nil.
func (g *Gateway) failoverFor(i int) *backend {
	if g.standby != nil && healthyNow(g.standby) {
		return g.standby
	}
	for off := 1; off < len(g.backends); off++ {
		b := g.backends[(i+off)%len(g.backends)]
		if healthyNow(b) {
			return b
		}
	}
	return nil
}

// route returns the primary and failover targets for backend index i.
// Draining and dead backends are skipped entirely; an unhealthy backend
// keeps first shot (it may be a blip) with the failover backstopping it.
func (g *Gateway) route(i int) (primary, fallback *backend) {
	b := g.backends[i]
	fo := g.failoverFor(i)
	if routable(b) {
		return b, fo
	}
	if fo != nil {
		return fo, nil
	}
	return b, nil // nothing healthy anywhere: last-resort attempt
}

// ServeHTTP dispatches cluster endpoints and forwards everything else.
// Fleet-level endpoints answer under both the versioned and unversioned
// operator paths, matching the single-node surface; cluster administration
// is v1-only.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case origin.ReportPath, origin.ReportPathV1:
		g.handleReport(w, r)
	case origin.MetricsPath, origin.MetricsPathV1:
		g.handleClusterMetrics(w, r)
	case origin.HealthzPath, origin.HealthzPathV1:
		g.handleClusterHealth(w, r)
	case ClusterPathV1:
		g.handleCluster(w, r)
	case ClusterReplacePathV1:
		g.handleReplace(w, r)
	case ClusterDrainPathV1:
		g.handleDrain(w, r)
	default:
		if strings.HasPrefix(r.URL.Path, "/oak/") {
			// Node-local operator surfaces (trace, audit, population, state)
			// are not aggregated; query the backend directly.
			http.Error(w, "not a cluster endpoint", http.StatusNotFound)
			return
		}
		g.handlePage(w, r)
	}
}
