package gateway

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"time"

	"oak/internal/core"
	"oak/internal/origin"
)

// Fleet aggregation: the gateway serves the same operator surface shape a
// single oakd does — /oak/v1/healthz and /oak/v1/metrics — but aggregated,
// so dashboards and oakreport point at one address whether they watch a
// node or a fleet. /oak/v1/cluster adds the gateway's own view: state
// machine positions, snapshot freshness, range ownership.

// BackendHealth is one backend's row in the cluster health view.
type BackendHealth struct {
	Addr  string `json:"addr"`
	State string `json:"state"`
	// Range is the hash-ring arc this backend owns (absent for the
	// standby, which owns none).
	Range *core.HashRange `json:"range,omitempty"`
	// ConsecutiveFails is the probe-failure streak driving the state
	// machine.
	ConsecutiveFails int    `json:"consecutive_fails,omitempty"`
	LastError        string `json:"last_error,omitempty"`
	// SnapshotAgeSeconds / SnapshotBytes describe the latest OAKSNAP2
	// snapshot the gateway holds for this backend (replacement readiness).
	SnapshotAgeSeconds float64 `json:"snapshot_age_seconds,omitempty"`
	SnapshotBytes      int     `json:"snapshot_bytes,omitempty"`
	// Healthz is the backend's own last healthz body (cluster view only).
	Healthz *origin.HealthzResponse `json:"healthz,omitempty"`
}

// ClusterHealthResponse is the gateway's GET /oak/v1/healthz body.
type ClusterHealthResponse struct {
	// Status is "ok" when every range-owning backend is healthy,
	// "degraded" otherwise.
	Status        string          `json:"status"`
	UptimeSeconds float64         `json:"uptime_seconds"`
	Backends      []BackendHealth `json:"backends"`
	Standby       *BackendHealth  `json:"standby,omitempty"`
	// Users and Reports sum the last-probed values across the fleet.
	Users   int    `json:"users"`
	Reports uint64 `json:"reports"`
	// OpenBreakers / DegradedProviders are the sorted unions across the
	// fleet — what the control sweep works from.
	OpenBreakers      []string `json:"open_breakers,omitempty"`
	DegradedProviders []string `json:"degraded_providers,omitempty"`
}

// GatewayMetrics are the gateway's own counters.
type GatewayMetrics struct {
	UptimeSeconds     float64 `json:"uptime_seconds"`
	ForwardedReports  uint64  `json:"forwarded_reports"`
	ForwardedPages    uint64  `json:"forwarded_pages"`
	Failovers         uint64  `json:"failovers"`
	ProbeCycles       uint64  `json:"probe_cycles"`
	BreakerBroadcasts uint64  `json:"breaker_broadcasts"`
	DegradeBroadcasts uint64  `json:"degrade_broadcasts"`
	Replacements      uint64  `json:"replacements"`
}

// BackendMetrics is one backend's row in the cluster metrics view.
type BackendMetrics struct {
	Addr    string                  `json:"addr"`
	State   string                  `json:"state"`
	Range   *core.HashRange         `json:"range,omitempty"`
	Metrics *origin.MetricsResponse `json:"metrics,omitempty"`
	Error   string                  `json:"error,omitempty"`
}

// ClusterMetricsResponse is the gateway's GET /oak/v1/metrics body.
type ClusterMetricsResponse struct {
	Gateway  GatewayMetrics   `json:"gateway"`
	Backends []BackendMetrics `json:"backends"`
	Standby  *BackendMetrics  `json:"standby,omitempty"`
}

// backendHealth renders one backend's health row.
func (g *Gateway) backendHealth(b *backend, rng *core.HashRange, detail bool) BackendHealth {
	b.mu.Lock()
	defer b.mu.Unlock()
	bh := BackendHealth{
		Addr:             b.addr,
		State:            string(b.state),
		Range:            rng,
		ConsecutiveFails: b.fails,
		LastError:        b.lastErr,
	}
	if len(b.snapshot) > 0 {
		bh.SnapshotBytes = len(b.snapshot)
		bh.SnapshotAgeSeconds = time.Since(b.snapshotAt).Seconds()
	}
	if detail {
		bh.Healthz = b.healthz
	}
	return bh
}

// clusterHealth builds the aggregated health view.
func (g *Gateway) clusterHealth(detail bool) ClusterHealthResponse {
	resp := ClusterHealthResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(g.started).Seconds(),
	}
	breakers := make(map[string]struct{})
	degraded := make(map[string]struct{})
	collect := func(b *backend, rng *core.HashRange) BackendHealth {
		bh := g.backendHealth(b, rng, detail)
		b.mu.Lock()
		hz := b.healthz
		b.mu.Unlock()
		if hz != nil {
			resp.Users += hz.Users
			resp.Reports += hz.Reports
			for _, p := range hz.OpenBreakers {
				breakers[p] = struct{}{}
			}
			for _, p := range hz.DegradedProviders {
				degraded[p] = struct{}{}
			}
		}
		return bh
	}
	for i, b := range g.backends {
		rng := g.ranges[i]
		bh := collect(b, &rng)
		if bh.State != string(StateHealthy) {
			resp.Status = "degraded"
		}
		resp.Backends = append(resp.Backends, bh)
	}
	if g.standby != nil {
		bh := collect(g.standby, nil)
		resp.Standby = &bh
	}
	resp.OpenBreakers = sortedKeys(breakers)
	resp.DegradedProviders = sortedKeys(degraded)
	return resp
}

func sortedKeys(m map[string]struct{}) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// fetchMetrics GETs one backend's metrics body.
func (g *Gateway) fetchMetrics(b *backend) (*origin.MetricsResponse, error) {
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.addr+origin.MetricsPathV1, nil)
	if err != nil {
		return nil, err
	}
	resp, err := g.httpc.Do(req)
	if err != nil {
		return nil, err
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	_ = resp.Body.Close()
	if err != nil {
		return nil, err
	}
	var mr origin.MetricsResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		return nil, err
	}
	return &mr, nil
}

// backendMetrics renders one backend's metrics row, fetching live.
func (g *Gateway) backendMetrics(b *backend, rng *core.HashRange) BackendMetrics {
	st, _, _, _ := b.snapshotState()
	bm := BackendMetrics{Addr: b.addr, State: string(st), Range: rng}
	if st == StateDead {
		bm.Error = "dead"
		return bm
	}
	mr, err := g.fetchMetrics(b)
	if err != nil {
		bm.Error = err.Error()
		return bm
	}
	bm.Metrics = mr
	return bm
}

// handleClusterHealth serves the aggregated healthz (summary form).
func (g *Gateway) handleClusterHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, g.clusterHealth(false))
}

// handleCluster serves the detailed fleet view (per-backend healthz bodies
// and snapshot freshness included).
func (g *Gateway) handleCluster(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, g.clusterHealth(true))
}

// handleClusterMetrics serves the gateway's counters plus every live
// backend's metrics body.
func (g *Gateway) handleClusterMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	resp := ClusterMetricsResponse{
		Gateway: GatewayMetrics{
			UptimeSeconds:     time.Since(g.started).Seconds(),
			ForwardedReports:  g.forwardedReports.Value(),
			ForwardedPages:    g.forwardedPages.Value(),
			Failovers:         g.failovers.Value(),
			ProbeCycles:       g.probeCycles.Value(),
			BreakerBroadcasts: g.breakerBroadcasts.Value(),
			DegradeBroadcasts: g.degradeBroadcasts.Value(),
			Replacements:      g.replacements.Value(),
		},
	}
	for i, b := range g.backends {
		rng := g.ranges[i]
		resp.Backends = append(resp.Backends, g.backendMetrics(b, &rng))
	}
	if g.standby != nil {
		bm := g.backendMetrics(g.standby, nil)
		resp.Standby = &bm
	}
	writeJSON(w, resp)
}

// writeJSON encodes v as indented JSON (mirrors the origin's encoding, so
// fleet and node responses render alike).
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
