package gateway_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"oak/internal/core"
	"oak/internal/origin"
	"oak/internal/report"
)

// Binary wire-format routing tests: the gateway must route a single OAKRPT1
// report by its sniffed user ID and split an OAKRPT1 batch frame by frame,
// exactly as it does for JSON and NDJSON.

// binFrameReport builds a minimal valid report for one user.
func binFrameReport(user string) *report.Report {
	return &report.Report{UserID: user, Page: "/p", Entries: []report.Entry{
		{URL: "http://x.example/a", ServerAddr: "1.1.1.1", SizeBytes: 1, DurationMillis: 1},
	}}
}

func TestBinaryReportRoutesBySniffedUser(t *testing.T) {
	fakes := []*fakeBackend{newFakeBackend(t), newFakeBackend(t), newFakeBackend(t)}
	gw := newTestGateway(t, fakes, nil)

	// No cookie: routing must come from the user ID sniffed out of the
	// binary payload.
	for i := range fakes {
		body, err := binFrameReport(userFor(t, i, 3)).MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		req := httptest.NewRequest("POST", origin.ReportPathV1, bytes.NewReader(body))
		req.Header.Set("Content-Type", report.ContentTypeBinary)
		rec := httptest.NewRecorder()
		gw.ServeHTTP(rec, req)
		if rec.Code != http.StatusNoContent {
			t.Fatalf("binary report for arc %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
	}
	for i, f := range fakes {
		got := f.snapshot()
		if len(got.reports) != 1 {
			t.Errorf("backend %d received %d reports, want exactly its own 1", i, len(got.reports))
		}
	}
}

func TestBinaryBatchSplitsByFrame(t *testing.T) {
	fakes := []*fakeBackend{newFakeBackend(t), newFakeBackend(t), newFakeBackend(t)}
	for _, f := range fakes {
		f.batchReply = &core.BatchResult{Submitted: 2, Processed: 2}
	}
	gw := newTestGateway(t, fakes, nil)

	// Two frames per arc, interleaved, so every backend gets one sub-batch
	// that had to be reassembled from non-adjacent frames.
	var body, scratch []byte
	for j := 0; j < 2; j++ {
		for i := range fakes {
			uid := userFor(t, i, 3)
			body, scratch = report.AppendBinaryFrame(body, scratch, binFrameReport(fmt.Sprintf("%s-%d", uid, j)))
		}
	}
	// The per-frame suffix may move a user to another arc; count the truth.
	perArc := map[int]int{}
	for j := 0; j < 2; j++ {
		for i := range fakes {
			uid := fmt.Sprintf("%s-%d", userFor(t, i, 3), j)
			perArc[core.RangeFor(uid, core.EqualRanges(3))]++
		}
	}

	req := httptest.NewRequest("POST", origin.ReportPathV1, bytes.NewReader(body))
	req.Header.Set("Content-Type", report.ContentTypeBinaryBatch)
	rec := httptest.NewRecorder()
	gw.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("binary batch status %d: %s", rec.Code, rec.Body.String())
	}
	var merged core.BatchResult
	if err := json.Unmarshal(rec.Body.Bytes(), &merged); err != nil {
		t.Fatal(err)
	}

	reached := 0
	for i, f := range fakes {
		got := f.snapshot()
		if perArc[i] == 0 {
			continue
		}
		if len(got.reports) != 1 {
			t.Errorf("backend %d got %d sub-batches, want 1", i, len(got.reports))
			continue
		}
		reached++
		// The sub-batch must be a well-formed frame stream holding exactly
		// this arc's reports.
		frames := 0
		for rest := []byte(got.reports[0]); ; {
			frame, next, err := report.NextBinaryFrame(rest)
			if err != nil {
				t.Errorf("backend %d sub-batch framing: %v", i, err)
				break
			}
			if frame == nil {
				break
			}
			if report.SniffBinaryUser(frame) == "" {
				t.Errorf("backend %d received an unsniffable frame", i)
			}
			frames++
			rest = next
		}
		if frames != perArc[i] {
			t.Errorf("backend %d sub-batch has %d frames, want %d", i, frames, perArc[i])
		}
	}
	if wantSubmitted := reached * 2; merged.Submitted != wantSubmitted {
		t.Errorf("merged.Submitted = %d, want %d", merged.Submitted, wantSubmitted)
	}
}

// TestBinaryBatchFramingErrorAtGateway pins the unrecoverable-tail case: the
// frames before the corruption still route, and the merged summary counts
// the broken tail as one failed report.
func TestBinaryBatchFramingErrorAtGateway(t *testing.T) {
	fakes := []*fakeBackend{newFakeBackend(t)}
	fakes[0].batchReply = &core.BatchResult{Submitted: 1, Processed: 1}
	gw := newTestGateway(t, fakes, nil)

	body, _ := report.AppendBinaryFrame(nil, nil, binFrameReport("tail-user"))
	body = append(body, 0xff, 0xff) // truncated length prefix: cannot resync

	req := httptest.NewRequest("POST", origin.ReportPathV1, bytes.NewReader(body))
	req.Header.Set("Content-Type", report.ContentTypeBinaryBatch)
	rec := httptest.NewRecorder()
	gw.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var merged core.BatchResult
	if err := json.Unmarshal(rec.Body.Bytes(), &merged); err != nil {
		t.Fatal(err)
	}
	if merged.Submitted != 2 || merged.Processed != 1 || merged.Failed != 1 {
		t.Errorf("merged = %+v, want 2 submitted / 1 processed / 1 failed", merged)
	}
	got := fakes[0].snapshot()
	if len(got.reports) != 1 {
		t.Fatalf("backend got %d sub-batches, want 1", len(got.reports))
	}
	// The forwarded sub-batch must not carry the corrupt tail.
	frame, rest, err := report.NextBinaryFrame([]byte(got.reports[0]))
	if err != nil || frame == nil || len(rest) != 0 {
		t.Errorf("forwarded sub-batch = frame %v rest %d err %v, want exactly one clean frame", frame != nil, len(rest), err)
	}
}
