module oak

go 1.22
