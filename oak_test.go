package oak_test

import (
	"fmt"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"oak"
)

// world wires a complete loopback Oak deployment through the public facade
// only: an Oak origin, content servers for each provider, and a resolver.
type world struct {
	origin   *httptest.Server
	oak      *oak.Server
	content  map[string]*oak.ContentServer
	backends map[string]*httptest.Server
}

func (w *world) resolve(host string) (string, bool) {
	ts, ok := w.backends[host]
	if !ok {
		return "", false
	}
	u, err := url.Parse(ts.URL)
	if err != nil {
		return "", false
	}
	return u.Host, true
}

func (w *world) close() {
	w.origin.Close()
	for _, ts := range w.backends {
		ts.Close()
	}
}

func newWorld(t *testing.T, ruleText string, hosts ...string) *world {
	t.Helper()
	rs, err := oak.ParseRules(ruleText)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := oak.NewEngine(rs)
	if err != nil {
		t.Fatal(err)
	}
	w := &world{
		oak:      oak.NewServer(engine),
		content:  make(map[string]*oak.ContentServer),
		backends: make(map[string]*httptest.Server),
	}
	for _, h := range hosts {
		cs := oak.NewContentServer()
		cs.AddObject("/obj.bin", 4096)
		w.content[h] = cs
		w.backends[h] = httptest.NewServer(cs)
	}
	w.origin = httptest.NewServer(w.oak)
	return w
}

const facadeRules = `
rule swap-primary {
  type 2
  default "<img src=\"http://primary.example/obj.bin\">"
  alt "<img src=\"http://backup.example/obj.bin\">"
  ttl 0
  scope *
}
`

func facadePage(hosts []string) string {
	var b strings.Builder
	b.WriteString("<html><body>\n")
	for _, h := range hosts {
		fmt.Fprintf(&b, "<img src=%q>\n", "http://"+h+"/obj.bin")
	}
	b.WriteString("</body></html>")
	return b.String()
}

// TestFacadeEndToEnd drives the full public API: parse rules, build the
// engine and server, run an instrumented client, watch Oak switch a
// degraded provider.
func TestFacadeEndToEnd(t *testing.T) {
	hosts := []string{"primary.example", "h2.example", "h3.example", "h4.example", "h5.example", "backup.example"}
	w := newWorld(t, facadeRules, hosts...)
	defer w.close()
	w.oak.SetPage("/index.html", facadePage(hosts[:5]))
	w.content["primary.example"].SetDelay(120 * time.Millisecond)

	c := &oak.Client{Resolve: w.resolve}
	res, html, err := c.LoadAndReport(w.origin.URL, "/index.html")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(html, "primary.example") {
		t.Fatal("first load should be the default page")
	}
	if len(res.Report.Entries) != 5 {
		t.Fatalf("report entries = %d, want 5", len(res.Report.Entries))
	}

	_, html2, err := c.LoadAndReport(w.origin.URL, "/index.html")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(html2, "primary.example") || !strings.Contains(html2, "backup.example") {
		t.Errorf("second load not switched: %q", html2)
	}

	snap, ok := w.oak.Engine().Snapshot(c.UserID)
	if !ok || len(snap.ActiveRules) != 1 || snap.ActiveRules[0] != "swap-primary" {
		t.Errorf("snapshot = %+v", snap)
	}
	ledger := w.oak.Engine().Ledger().Stats()
	if len(ledger) != 1 || ledger[0].RuleID != "swap-primary" {
		t.Errorf("ledger = %+v", ledger)
	}
}

func TestFacadeRuleRoundTrip(t *testing.T) {
	rs, err := oak.ParseRules(facadeRules)
	if err != nil {
		t.Fatal(err)
	}
	data, err := oak.MarshalRules(rs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := oak.ParseRulesJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].ID != "swap-primary" || back[0].Type != oak.TypeReplaceSame {
		t.Errorf("round trip = %+v", back[0])
	}
}

func TestFacadeEngineOptions(t *testing.T) {
	var logged bool
	fixed := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	engine, err := oak.NewEngine(nil,
		oak.WithPolicy(oak.Policy{MADMultiplier: 3, MinViolations: 2}),
		oak.WithClock(func() time.Time { return fixed }),
		oak.WithLogf(func(string, ...any) { logged = true }),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep := &oak.Report{UserID: "u", Page: "/", Entries: []oak.Entry{
		{URL: "http://a.example/x", ServerAddr: "1.1.1.1", SizeBytes: 10, DurationMillis: 5},
	}}
	if _, err := engine.HandleReport(rep); err != nil {
		t.Fatal(err)
	}
	snap, ok := engine.Snapshot("u")
	if !ok || !snap.LastReport.Equal(fixed) {
		t.Errorf("snapshot = %+v, want clock-injected LastReport", snap)
	}
	_ = logged // logging only fires on decisions; presence compile-checked
}

func TestFacadeUnmarshalReport(t *testing.T) {
	rep := &oak.Report{UserID: "u", Page: "/", Entries: []oak.Entry{
		{URL: "http://a.example/x", SizeBytes: 10, DurationMillis: 5},
	}}
	data, err := rep.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := oak.UnmarshalReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.UserID != "u" || len(back.Entries) != 1 {
		t.Errorf("round trip = %+v", back)
	}
}

// TestLoadRulesAutodetect feeds LoadRules each format it claims to
// auto-detect — the DSL, a JSON array, and a JSON object with leading
// whitespace — and expects the same compiled rule from all three.
func TestLoadRulesAutodetect(t *testing.T) {
	dsl, err := oak.ParseRules(facadeRules)
	if err != nil {
		t.Fatal(err)
	}
	asJSON, err := oak.MarshalRules(dsl)
	if err != nil {
		t.Fatal(err)
	}
	inputs := map[string]string{
		"dsl":        facadeRules,
		"json":       string(asJSON),
		"jsonSpaced": "\n\t  " + string(asJSON),
	}
	for name, in := range inputs {
		rs, err := oak.LoadRules(strings.NewReader(in))
		if err != nil {
			t.Fatalf("%s: LoadRules: %v", name, err)
		}
		if len(rs.Rules) != 1 || rs.Rules[0].ID != "swap-primary" || rs.Rules[0].Type != oak.TypeReplaceSame {
			t.Errorf("%s: rules = %+v", name, rs.Rules)
		}
	}
}

func TestLoadRulesRejectsGarbage(t *testing.T) {
	for name, in := range map[string]string{
		"badJSON": `[{"id": }`,
		"badDSL":  `rule broken { type 9`,
	} {
		if _, err := oak.LoadRules(strings.NewReader(in)); err == nil {
			t.Errorf("%s: LoadRules accepted invalid input", name)
		}
	}
}

// TestRuleSetLintAndMarshal exercises the RuleSet methods around LoadRules:
// Lint surfaces the no-alternatives trap, MarshalJSON re-exports losslessly.
func TestRuleSetLintAndMarshal(t *testing.T) {
	rs, err := oak.LoadRules(strings.NewReader(facadeRules))
	if err != nil {
		t.Fatal(err)
	}
	if ws := rs.Lint(); len(ws) != 0 {
		t.Errorf("clean set linted dirty: %v", ws)
	}
	rs.Rules[0].Alternatives = nil
	found := false
	for _, w := range rs.Lint() {
		if w.Code == "no-alternatives" {
			found = true
		}
	}
	if !found {
		t.Errorf("lint missed no-alternatives: %v", rs.Lint())
	}

	rs2, err := oak.LoadRules(strings.NewReader(facadeRules))
	if err != nil {
		t.Fatal(err)
	}
	data, err := rs2.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := oak.LoadRules(strings.NewReader(string(data)))
	if err != nil {
		t.Fatalf("re-load of MarshalJSON output: %v", err)
	}
	if len(back.Rules) != 1 || back.Rules[0].ID != "swap-primary" {
		t.Errorf("marshal round trip = %+v", back.Rules)
	}
}
