// Diurnal congestion: rule TTLs and re-activation across a simulated day.
//
// A metrics provider gets overloaded during business hours and recovers at
// night — the paper's Figure 11 scenario. Oak's rule carries a 2-hour TTL:
// during the busy period the user's page keeps re-activating onto the
// alternate (every report re-observes the violation); once the provider
// recovers, the activation lapses and the page drifts back to the default
// without any operator involvement.
//
// The simulated day drives both the engine clock (via oak.WithClock) and
// the provider's artificial delay.
//
// Run with: go run ./examples/diurnal
package main

import (
	"fmt"
	"log"
	"math"
	"net/http/httptest"
	"net/url"
	"strings"
	"time"

	"oak"
)

const ruleText = `
rule swap-metrics {
  type 2
  default "<script src=\"http://metrics.example/collect.js\"></script>"
  alt "<script src=\"http://metrics-alt.example/collect.js\"></script>"
  ttl 2h
  scope *
}
`

// peakDelay returns the provider's artificial delay at a given hour:
// negligible at night, heavy around 14:00.
func peakDelay(hour int) time.Duration {
	shape := (math.Cos((float64(hour)-14)/24*2*math.Pi) + 1) / 2 // 1 at 14:00
	return time.Duration(shape * shape * 250 * float64(time.Millisecond))
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Each provider has its own realistic base latency; the spread keeps
	// Oak's MAD criterion from firing on loopback micro-noise, so only the
	// genuine daytime congestion triggers a switch.
	baseDelay := map[string]time.Duration{
		"metrics.example":     9 * time.Millisecond,
		"metrics-alt.example": 10 * time.Millisecond,
		"img.example":         8 * time.Millisecond,
		"css.example":         12 * time.Millisecond,
		"api.example":         10 * time.Millisecond,
		"fonts.example":       11 * time.Millisecond,
	}
	backends := make(map[string]*httptest.Server, len(baseDelay))
	content := make(map[string]*oak.ContentServer, len(baseDelay))
	for h, d := range baseDelay {
		cs := oak.NewContentServer()
		cs.AddObject("/collect.js", 10*1024)
		cs.AddObject("/asset.bin", 10*1024)
		cs.SetDelay(d)
		content[h] = cs
		ts := httptest.NewServer(cs)
		defer ts.Close()
		backends[h] = ts
	}

	rules, err := oak.ParseRules(ruleText)
	if err != nil {
		return err
	}
	// The engine's clock follows the simulated day so TTL expiry works on
	// simulated, not wall, time.
	simNow := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	engine, err := oak.NewEngine(rules, oak.WithClock(func() time.Time { return simNow }))
	if err != nil {
		return err
	}
	server := oak.NewServer(engine)
	server.SetPage("/", `<html><body>
<script src="http://metrics.example/collect.js"></script>
<img src="http://img.example/asset.bin">
<link rel="stylesheet" href="http://css.example/asset.bin">
<img src="http://api.example/asset.bin">
<img src="http://fonts.example/asset.bin">
</body></html>`)
	origin := httptest.NewServer(server)
	defer origin.Close()

	client := &oak.Client{Resolve: func(host string) (string, bool) {
		ts, ok := backends[host]
		if !ok {
			return "", false
		}
		u, err := url.Parse(ts.URL)
		if err != nil {
			return "", false
		}
		return u.Host, true
	}}

	fmt.Println("hour  delay(ms)  metrics served by   PLT(ms)")
	for hour := 0; hour < 24; hour += 2 {
		simNow = simNow.Truncate(24 * time.Hour).Add(time.Duration(hour) * time.Hour)
		delay := peakDelay(hour)
		content["metrics.example"].SetDelay(9*time.Millisecond + delay)

		// Users browse several pages per visit: the first load of the hour
		// observes (and reports) current conditions, the second reflects
		// Oak's reaction.
		if _, _, err := client.LoadAndReport(origin.URL, "/"); err != nil {
			return err
		}
		res, html, err := client.LoadAndReport(origin.URL, "/")
		if err != nil {
			return err
		}
		serving := "metrics (default)"
		if strings.Contains(html, "metrics-alt.example") {
			serving = "metrics-alt (Oak)"
		}
		fmt.Printf("%02d:00  %8.0f  %-18s %8.1f\n",
			hour, float64(delay)/float64(time.Millisecond), serving,
			float64(res.PLT)/float64(time.Millisecond))
	}
	return nil
}
