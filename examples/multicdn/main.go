// Multi-CDN failover: linear progression through a rule's alternatives.
//
// A site serves its JavaScript bundle from cdn-1 with replicas on cdn-2 and
// cdn-3. cdn-1 degrades, Oak switches the user to cdn-2; then cdn-2
// degrades too and Oak progresses to cdn-3 ("Oak progresses through the
// list linearly with each activation", Section 4.2.4). When cdn-3 also
// turns bad — and performs even worse than the original default did — the
// rule-history mechanism (Section 4.2.3) gives up and reverts to cdn-1.
//
// Run with: go run ./examples/multicdn
package main

import (
	"fmt"
	"log"
	"net/http/httptest"
	"net/url"
	"regexp"
	"time"

	"oak"
)

const ruleText = `
rule bundle-cdn {
  type 2
  default "<script src=\"http://cdn-1.example/app.js\"></script>"
  alt "<script src=\"http://cdn-2.example/app.js\"></script>"
  alt "<script src=\"http://cdn-3.example/app.js\"></script>"
  ttl 0
  scope *
}
`

var cdnRe = regexp.MustCompile(`cdn-\d`)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	hosts := []string{"cdn-1.example", "cdn-2.example", "cdn-3.example",
		"img.example", "css.example", "api.example", "stats.example"}
	backends := make(map[string]*httptest.Server, len(hosts))
	content := make(map[string]*oak.ContentServer, len(hosts))
	for _, h := range hosts {
		cs := oak.NewContentServer()
		cs.AddObject("/app.js", 16*1024)
		cs.AddObject("/asset.bin", 16*1024)
		content[h] = cs
		ts := httptest.NewServer(cs)
		defer ts.Close()
		backends[h] = ts
	}

	rules, err := oak.ParseRules(ruleText)
	if err != nil {
		return err
	}
	engine, err := oak.NewEngine(rules)
	if err != nil {
		return err
	}
	server := oak.NewServer(engine)
	server.SetPage("/", `<html><body>
<script src="http://cdn-1.example/app.js"></script>
<img src="http://img.example/asset.bin">
<link rel="stylesheet" href="http://css.example/asset.bin">
<img src="http://api.example/asset.bin">
<img src="http://stats.example/asset.bin">
</body></html>`)
	origin := httptest.NewServer(server)
	defer origin.Close()

	client := &oak.Client{Resolve: func(host string) (string, bool) {
		ts, ok := backends[host]
		if !ok {
			return "", false
		}
		u, err := url.Parse(ts.URL)
		if err != nil {
			return "", false
		}
		return u.Host, true
	}}

	// The scenario unfolds: each phase degrades the CDN currently in use.
	phases := []struct {
		note    string
		degrade string
		delay   time.Duration
	}{
		{"all healthy", "", 0},
		{"cdn-1 degrades", "cdn-1.example", 120 * time.Millisecond},
		{"cdn-2 degrades too", "cdn-2.example", 150 * time.Millisecond},
		{"cdn-3 degrades worst of all", "cdn-3.example", 400 * time.Millisecond},
		{"aftermath", "", 0},
	}
	for _, ph := range phases {
		if ph.degrade != "" {
			content[ph.degrade].SetDelay(ph.delay)
		}
		// Two loads per phase: one to observe+report, one to see the effect.
		var using string
		for i := 0; i < 2; i++ {
			res, html, err := client.LoadAndReport(origin.URL, "/")
			if err != nil {
				return err
			}
			using = cdnRe.FindString(html)
			_ = res
		}
		fmt.Printf("%-28s -> bundle served from %s\n", ph.note, using)
	}
	return nil
}
