// Fleet auditing: what a site operator sees after real traffic.
//
// Thirty users with varied conditions browse an Oak-fronted site: one
// provider is degraded for everyone, another is bad only for a couple of
// unlucky users (a path-specific problem). After the fleet has browsed,
// the example prints the engine's audit — the paper's "offline auditing
// tool" — showing the common offender, the individual problem, aggregate
// counters, and finally round-trips the learned state through
// ExportState/ImportState as a deployment restart would.
//
// Run with: go run ./examples/audit
package main

import (
	"fmt"
	"log"
	"net/http/httptest"
	"net/url"
	"time"

	"oak"
)

const ruleText = `
rule swap-ads {
  type 2
  default "<script src=\"http://ads.example/serve.js\"></script>"
  alt "<script src=\"http://ads-alt.example/serve.js\"></script>"
  ttl 0
  scope *
}

rule swap-fonts {
  type 2
  default <<<
    <link rel="stylesheet" href="http://fonts.example/face.css">
  >>>
  alt <<<
    <link rel="stylesheet" href="http://fonts-alt.example/face.css">
  >>>
  ttl 0
  scope *
}
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	hosts := []string{"ads.example", "ads-alt.example", "fonts.example", "fonts-alt.example",
		"img.example", "cdn.example", "api.example"}
	baseDelay := map[string]time.Duration{
		"ads.example": 80 * time.Millisecond, // degraded for everyone
		"img.example": 8 * time.Millisecond,
		"cdn.example": 10 * time.Millisecond, "api.example": 12 * time.Millisecond,
		"fonts.example":   9 * time.Millisecond,
		"ads-alt.example": 10 * time.Millisecond, "fonts-alt.example": 10 * time.Millisecond,
	}
	backends := make(map[string]*httptest.Server, len(hosts))
	content := make(map[string]*oak.ContentServer, len(hosts))
	for _, h := range hosts {
		cs := oak.NewContentServer()
		for _, p := range []string{"/serve.js", "/face.css", "/a.bin", "/b.bin", "/c.bin"} {
			cs.AddObject(p, 10*1024)
		}
		cs.SetDelay(baseDelay[h])
		content[h] = cs
		ts := httptest.NewServer(cs)
		defer ts.Close()
		backends[h] = ts
	}

	rules, err := oak.ParseRules(ruleText)
	if err != nil {
		return err
	}
	// The lint pass catches configuration mistakes before deployment.
	for _, w := range oak.LintRules(rules) {
		fmt.Println("lint:", w)
	}
	engine, err := oak.NewEngine(rules)
	if err != nil {
		return err
	}
	server := oak.NewServer(engine)
	server.SetPage("/", `<html><body>
<script src="http://ads.example/serve.js"></script>
<link rel="stylesheet" href="http://fonts.example/face.css">
<img src="http://img.example/a.bin">
<img src="http://cdn.example/b.bin">
<img src="http://api.example/c.bin">
</body></html>`)
	origin := httptest.NewServer(server)
	defer origin.Close()

	resolve := func(host string) (string, bool) {
		ts, ok := backends[host]
		if !ok {
			return "", false
		}
		u, err := url.Parse(ts.URL)
		if err != nil {
			return "", false
		}
		return u.Host, true
	}

	// Thirty users browse twice each. Users 7 and 19 additionally have a
	// terrible path to the fonts provider: before their loads, the example
	// degrades it (a stand-in for a client-specific network blind-spot).
	for i := 0; i < 30; i++ {
		unlucky := i == 7 || i == 19
		if unlucky {
			content["fonts.example"].SetDelay(120 * time.Millisecond)
		}
		c := &oak.Client{Resolve: resolve}
		for load := 0; load < 2; load++ {
			if _, _, err := c.LoadAndReport(origin.URL, "/"); err != nil {
				return err
			}
		}
		if unlucky {
			content["fonts.example"].SetDelay(baseDelay["fonts.example"])
		}
	}

	fmt.Println(engine.Audit().Render())

	// Restart survival: export, rebuild, import, confirm.
	state, err := engine.ExportState()
	if err != nil {
		return err
	}
	engine2, err := oak.NewEngine(rules)
	if err != nil {
		return err
	}
	if err := engine2.ImportState(state); err != nil {
		return err
	}
	fmt.Printf("state round-trip: %d users restored (%d bytes of state)\n",
		engine2.Users(), len(state))
	return nil
}
