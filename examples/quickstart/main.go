// Quickstart: the smallest complete Oak deployment.
//
// One origin page embeds objects from five external providers. One of them
// is degraded. An Oak-enabled client loads the page, reports its timings,
// and the very next load is steered to the healthy alternative — for this
// user only.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"net/http/httptest"
	"net/url"
	"strings"
	"time"

	"oak"
)

const ruleText = `
# If cdn-a under-performs for a user, serve the identical bundle from cdn-b.
rule swap-cdn-a {
  type 2
  default "<script src=\"http://cdn-a.example/bundle.js\"></script>"
  alt "<script src=\"http://cdn-b.example/bundle.js\"></script>"
  ttl 0      # stay switched until the alternate misbehaves
  scope *    # site-wide
}
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Third-party providers (loopback stand-ins). cdn-a is degraded.
	hosts := []string{"cdn-a.example", "img.example", "fonts.example", "ads.example", "stats.example", "cdn-b.example"}
	backends := make(map[string]*httptest.Server, len(hosts))
	content := make(map[string]*oak.ContentServer, len(hosts))
	for _, h := range hosts {
		cs := oak.NewContentServer()
		cs.AddObject("/bundle.js", 16*1024)
		cs.AddObject("/asset.bin", 8*1024)
		content[h] = cs
		ts := httptest.NewServer(cs)
		defer ts.Close()
		backends[h] = ts
	}
	content["cdn-a.example"].SetDelay(150 * time.Millisecond)

	// 2. The Oak-fronted origin.
	rules, err := oak.ParseRules(ruleText)
	if err != nil {
		return err
	}
	engine, err := oak.NewEngine(rules, oak.WithLogf(log.Printf))
	if err != nil {
		return err
	}
	server := oak.NewServer(engine)
	server.SetPage("/index.html", `<html><body>
<script src="http://cdn-a.example/bundle.js"></script>
<img src="http://img.example/asset.bin">
<img src="http://fonts.example/asset.bin">
<img src="http://ads.example/asset.bin">
<img src="http://stats.example/asset.bin">
</body></html>`)
	origin := httptest.NewServer(server)
	defer origin.Close()

	// 3. An Oak-enabled client (resolves provider names to the loopback
	// listeners, measures every download, reports back).
	client := &oak.Client{Resolve: func(host string) (string, bool) {
		ts, ok := backends[host]
		if !ok {
			return "", false
		}
		u, err := url.Parse(ts.URL)
		if err != nil {
			return "", false
		}
		return u.Host, true
	}}

	for i := 1; i <= 3; i++ {
		res, html, err := client.LoadAndReport(origin.URL, "/index.html")
		if err != nil {
			return err
		}
		provider := "cdn-a (default)"
		if strings.Contains(html, "cdn-b.example") {
			provider = "cdn-b (Oak-switched)"
		}
		fmt.Printf("load %d: PLT %7.1fms  bundle from %s\n",
			i, float64(res.PLT)/float64(time.Millisecond), provider)
	}

	snap, _ := server.Engine().Snapshot(client.UserID)
	fmt.Printf("active rules for this user: %v\n", snap.ActiveRules)
	return nil
}
