// Ad replacement: Type 3 (non-identical alternative) and Type 1 (removal)
// rules, sub-rules, and scopes.
//
// A news site's article pages embed an ad slot from ad-net-a plus a
// tracking pixel. When ad-net-a under-performs for a user, a Type 3 rule
// replaces the whole slot with a house ad served by the origin's own CDN
// (and a sub-rule flips the page's adsEnabled flag); a Type 1 rule drops
// the tracker outright on checkout pages only.
//
// Run with: go run ./examples/adswap
package main

import (
	"fmt"
	"log"
	"net/http/httptest"
	"net/url"
	"strings"
	"time"

	"oak"
)

const ruleText = `
# Replace the external ad slot with a house ad when ad-net-a misbehaves.
rule house-ad {
  type 3
  default <<<
    <div class="ad-slot">
      <script src="http://ad-net-a.example/serve.js"></script>
    </div>
  >>>
  alt <<<
    <div class="ad-slot house">
      <img src="http://static.news.example/house-ad.png">
    </div>
  >>>
  ttl 30m
  scope /articles/*
  sub "var adsEnabled = true" -> "var adsEnabled = false"
}

# Never let a slow tracker delay checkout.
rule drop-tracker {
  type 1
  default "<img src=\"http://ad-net-a.example/pixel.gif\">"
  ttl 0
  scope /checkout/*
}
`

const articlePage = `<html><body>
<script>var adsEnabled = true;</script>
<div class="ad-slot">
  <script src="http://ad-net-a.example/serve.js"></script>
</div>
<img src="http://img.news.example/photo.jpg">
<img src="http://static.news.example/style.bin">
<img src="http://social.example/badge.bin">
<img src="http://cdn.partner.example/widget.bin">
</body></html>`

const checkoutPage = `<html><body>
<img src="http://ad-net-a.example/pixel.gif">
<img src="http://img.news.example/photo.jpg">
<img src="http://static.news.example/style.bin">
<img src="http://social.example/badge.bin">
<img src="http://cdn.partner.example/widget.bin">
</body></html>`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	hosts := []string{"ad-net-a.example", "img.news.example", "static.news.example",
		"social.example", "cdn.partner.example"}
	backends := make(map[string]*httptest.Server, len(hosts))
	content := make(map[string]*oak.ContentServer, len(hosts))
	for _, h := range hosts {
		cs := oak.NewContentServer()
		for _, path := range []string{"/serve.js", "/pixel.gif", "/photo.jpg", "/style.bin", "/badge.bin", "/widget.bin", "/house-ad.png"} {
			cs.AddObject(path, 12*1024)
		}
		content[h] = cs
		ts := httptest.NewServer(cs)
		defer ts.Close()
		backends[h] = ts
	}
	content["ad-net-a.example"].SetDelay(130 * time.Millisecond)

	rules, err := oak.ParseRules(ruleText)
	if err != nil {
		return err
	}
	engine, err := oak.NewEngine(rules)
	if err != nil {
		return err
	}
	server := oak.NewServer(engine)
	server.SetPage("/articles/today.html", articlePage)
	server.SetPage("/checkout/pay.html", checkoutPage)
	origin := httptest.NewServer(server)
	defer origin.Close()

	client := &oak.Client{Resolve: func(host string) (string, bool) {
		ts, ok := backends[host]
		if !ok {
			return "", false
		}
		u, err := url.Parse(ts.URL)
		if err != nil {
			return "", false
		}
		return u.Host, true
	}}

	describe := func(label, html string) {
		var notes []string
		if strings.Contains(html, "house-ad.png") {
			notes = append(notes, "house ad")
		}
		if strings.Contains(html, "ad-net-a.example/serve.js") {
			notes = append(notes, "external ad")
		}
		if strings.Contains(html, "adsEnabled = false") {
			notes = append(notes, "adsEnabled flipped")
		}
		if strings.Contains(html, "pixel.gif") {
			notes = append(notes, "tracker present")
		} else if label == "checkout" {
			notes = append(notes, "tracker removed")
		}
		fmt.Printf("%-10s %s\n", label+":", strings.Join(notes, ", "))
	}

	// Article load 1 exposes ad-net-a; load 2 shows the Type 3 swap.
	for i := 0; i < 2; i++ {
		_, html, err := client.LoadAndReport(origin.URL, "/articles/today.html")
		if err != nil {
			return err
		}
		describe(fmt.Sprintf("article#%d", i+1), html)
	}
	// The checkout rule is scoped separately: a checkout load reports the
	// same violator and drops the pixel on the next one.
	for i := 0; i < 2; i++ {
		_, html, err := client.LoadAndReport(origin.URL, "/checkout/pay.html")
		if err != nil {
			return err
		}
		describe("checkout", html)
	}
	return nil
}
