// Package scenarios holds the checked-in starter scenario matrix: one JSON
// spec per named workload, embedded so `oakbench scenario <name>` runs from
// any working directory. The specs are plain data — the schema, loader and
// runtime live in internal/experiment (scenario.go, scenariorun.go), and the
// authoring guide is docs/SCENARIOS.md.
//
// Edit these files (or add new ones — the file name must match the spec's
// "name" field) to grow the matrix; `go test ./internal/experiment` parses
// and smoke-runs every embedded spec, so a malformed addition fails the
// build's test gate rather than first exploding at the CLI.
package scenarios

import "embed"

// Files is the embedded spec set, one "<name>.json" per scenario.
//
//go:embed *.json
var Files embed.FS
