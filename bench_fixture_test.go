package oak_test

import (
	"fmt"
	"strings"
	"testing"

	"oak"
)

// newEngineBenchFixture builds a 10-rule engine and a 25-object report with
// one clear violator, for the micro-benchmarks.
func newEngineBenchFixture(b *testing.B) (*oak.Engine, *oak.Report) {
	b.Helper()
	var ruleSet []*oak.Rule
	for i := 0; i < 10; i++ {
		ruleSet = append(ruleSet, &oak.Rule{
			ID:           fmt.Sprintf("swap-%d", i),
			Type:         oak.TypeReplaceSame,
			Default:      fmt.Sprintf("<img src=%q>", objURL(i)),
			Alternatives: []string{fmt.Sprintf("<img src=%q>", altURL(i))},
			Scope:        "*",
		})
	}
	engine, err := oak.NewEngine(ruleSet)
	if err != nil {
		b.Fatal(err)
	}
	rep := &oak.Report{UserID: "u", Page: "/index.html"}
	for i := 0; i < 25; i++ {
		host := i % 10
		ms := 80 + float64(i%7)*10
		if host == 3 {
			ms = 2500 // the violator
		}
		rep.Entries = append(rep.Entries, oak.Entry{
			URL:            objURL(host),
			ServerAddr:     fmt.Sprintf("10.0.0.%d", host),
			SizeBytes:      4096,
			DurationMillis: ms,
		})
	}
	return engine, rep
}

func objURL(i int) string { return fmt.Sprintf("http://host-%d.example/obj.bin", i) }
func altURL(i int) string { return fmt.Sprintf("http://alt-%d.example/obj.bin", i) }

// benchPage is a page containing every fixture rule's default text.
func benchPage() string {
	var b strings.Builder
	b.WriteString("<html><body>\n")
	for i := 0; i < 10; i++ {
		fmt.Fprintf(&b, "<img src=%q>\n", objURL(i))
	}
	b.WriteString("</body></html>")
	return b.String()
}
