package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"oak/internal/report"
)

func writeReport(t *testing.T, rep *report.Report) string {
	t.Helper()
	data, err := rep.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "report.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func sampleReport() *report.Report {
	rep := &report.Report{UserID: "u1", Page: "/index.html"}
	hosts := []struct {
		host string
		ms   float64
	}{
		{"slow.example", 2500},
		{"a.example", 100},
		{"b.example", 110},
		{"c.example", 95},
		{"d.example", 105},
	}
	for _, h := range hosts {
		rep.Entries = append(rep.Entries, report.Entry{
			URL: "http://" + h.host + "/x.bin", ServerAddr: "ip-" + h.host,
			SizeBytes: 4096, DurationMillis: h.ms,
		})
	}
	return rep
}

func TestRunAnalysesReport(t *testing.T) {
	path := writeReport(t, sampleReport())
	var out bytes.Buffer
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "VIOLATOR") {
		t.Errorf("no violator flagged:\n%s", s)
	}
	if !strings.Contains(s, "ip-slow.example") {
		t.Errorf("slow server missing:\n%s", s)
	}
	if !strings.Contains(s, "violators: 1 of 5") {
		t.Errorf("summary line wrong:\n%s", s)
	}
}

func TestRunStricterK(t *testing.T) {
	path := writeReport(t, sampleReport())
	var out bytes.Buffer
	// An absurd k flags nothing.
	if err := run([]string{"-k", "500", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "violators: 0 of 5") {
		t.Errorf("k=500 still flagged:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Error("no files: want error")
	}
	if err := run([]string{"/does/not/exist.json"}, &out); err == nil {
		t.Error("missing file: want error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{bad}, &out); err == nil {
		t.Error("bad json: want error")
	}
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, []byte(`{"userId":"u","page":"/","entries":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{empty}, &out); err == nil {
		t.Error("invalid report: want error")
	}
}

func TestByteSize(t *testing.T) {
	tests := []struct {
		n    int64
		want string
	}{
		{512, "512 B"},
		{2048, "2.0 KB"},
		{3 << 20, "3.0 MB"},
	}
	for _, tt := range tests {
		if got := byteSize(tt.n); got != tt.want {
			t.Errorf("byteSize(%d) = %q, want %q", tt.n, got, tt.want)
		}
	}
}

func TestRunHARInput(t *testing.T) {
	har := `{"log":{"pages":[{"id":"p","title":"http://site.example/"}],"entries":[
	  {"time":2500,"request":{"method":"GET","url":"http://slow.example/a.bin"},"response":{"status":200,"content":{"size":4096,"mimeType":"image/png"}},"serverIPAddress":"9.9.9.9"},
	  {"time":100,"request":{"method":"GET","url":"http://a.example/b.bin"},"response":{"status":200,"content":{"size":4096,"mimeType":"image/png"}},"serverIPAddress":"1.1.1.1"},
	  {"time":110,"request":{"method":"GET","url":"http://b.example/c.bin"},"response":{"status":200,"content":{"size":4096,"mimeType":"image/png"}},"serverIPAddress":"2.2.2.2"},
	  {"time":95,"request":{"method":"GET","url":"http://c.example/d.bin"},"response":{"status":200,"content":{"size":4096,"mimeType":"image/png"}},"serverIPAddress":"3.3.3.3"},
	  {"time":105,"request":{"method":"GET","url":"http://d.example/e.bin"},"response":{"status":200,"content":{"size":4096,"mimeType":"image/png"}},"serverIPAddress":"4.4.4.4"}
	]}}`
	path := filepath.Join(t.TempDir(), "session.har")
	if err := os.WriteFile(path, []byte(har), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "VIOLATOR") || !strings.Contains(out.String(), "9.9.9.9") {
		t.Errorf("HAR analysis missing violator:\n%s", out.String())
	}
}
