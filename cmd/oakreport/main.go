// Command oakreport analyses Oak performance reports offline: it reads one
// or more report JSON files (the bodies clients POST to /oak/v1/report),
// prints the per-server grouping the engine derives, and flags violators
// with the paper's MAD criterion — the same analysis the live server runs,
// available for debugging and auditing captured reports.
//
// Usage:
//
//	oakreport report1.json report2.json ...
//	oakreport -k 3 report.json        # stricter criterion
//	oakreport session.har             # browser-devtools HAR export
//	cat report.json | oakreport -     # read from stdin
//
// With -metrics it instead inspects a live server: it fetches the oakd
// observability endpoints and pretty-prints the counters and ingest/rewrite
// latency histograms:
//
//	oakreport -metrics http://localhost:8080
//
// With -guard it prints the server's circuit-breaker guard state: per-provider
// breaker states, quarantined providers and rules, and canary outcomes:
//
//	oakreport -guard http://localhost:8080
//
// With -population it prints the server's population-detection state:
// currently flagged (degraded) providers, per-provider trailing-baseline
// quantiles, the heavy-hitter provider ranking, and synthesis counters.
// The server must run with population detection enabled (oakd
// -synth-window > 0):
//
//	oakreport -population http://localhost:8080
//
// With -memory it prints the server's profile-residency state: how many
// profiles are resident versus spilled to disk segments, the resident and
// on-disk footprints against their caps, rehydration latency, and whether
// the spill tier has degraded to memory-only mode. The server must run with
// a residency cap (oakd -profile-cache/-profile-cache-bytes + -spill-dir):
//
//	oakreport -memory http://localhost:8080
//
// With -cluster it points at an oakgw gateway instead of a single node and
// renders the aggregated fleet view: per-backend state-machine positions,
// range ownership, snapshot freshness, fleet-wide user/report totals, the
// open-breaker and degraded-provider unions, and the gateway's own
// forwarding/failover/broadcast counters:
//
//	oakreport -cluster http://localhost:8090
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"oak/internal/core"
	"oak/internal/gateway"
	"oak/internal/origin"
	"oak/internal/report"
	"oak/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "oakreport:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("oakreport", flag.ContinueOnError)
	k := fs.Float64("k", 2, "MAD multiplier for the violator criterion")
	har := fs.Bool("har", false, "treat inputs as HAR files (implied by a .har extension)")
	metricsURL := fs.String("metrics", "", "base URL of a live Oak server; fetch and pretty-print its /oak/v1/metrics instead of analysing files")
	guardURL := fs.String("guard", "", "base URL of a live Oak server; print its circuit-breaker guard state (breakers, quarantines, canaries)")
	popURL := fs.String("population", "", "base URL of a live Oak server; print its population-detection state (degraded providers, baselines, synthesis counters)")
	memURL := fs.String("memory", "", "base URL of a live Oak server; print its profile-residency state (resident/spilled profiles, segment footprint, rehydration latency)")
	clusterURL := fs.String("cluster", "", "base URL of an oakgw gateway; print the aggregated fleet health and metrics")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *metricsURL != "" {
		return liveMetrics(out, *metricsURL)
	}
	if *guardURL != "" {
		return liveGuard(out, *guardURL)
	}
	if *popURL != "" {
		return livePopulation(out, *popURL)
	}
	if *memURL != "" {
		return liveMemory(out, *memURL)
	}
	if *clusterURL != "" {
		return liveCluster(out, *clusterURL)
	}
	files := fs.Args()
	if len(files) == 0 {
		return fmt.Errorf("no report files given (use - for stdin)")
	}
	for _, f := range files {
		data, err := readInput(f)
		if err != nil {
			return err
		}
		var rep *report.Report
		if *har || strings.HasSuffix(f, ".har") {
			rep, err = report.FromHAR(data, "har-session")
		} else {
			rep, err = report.Unmarshal(data)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
		if err := rep.Validate(); err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
		if err := analyse(out, f, rep, *k); err != nil {
			return err
		}
	}
	return nil
}

// liveMetrics fetches a running server's observability endpoints and
// renders them for a terminal.
func liveMetrics(out io.Writer, base string) error {
	base = strings.TrimSuffix(base, "/")
	client := &http.Client{Timeout: 10 * time.Second}

	var health origin.HealthzResponse
	if err := fetchJSON(client, base+origin.HealthzPathV1, &health); err != nil {
		return err
	}
	var m origin.MetricsResponse
	if err := fetchJSON(client, base+origin.MetricsPathV1, &m); err != nil {
		return err
	}

	fmt.Fprintf(out, "== %s ==\n", base)
	fmt.Fprintf(out, "status %s, up %s, %d rules, %d users\n\n",
		health.Status, (time.Duration(health.UptimeSeconds * float64(time.Second))).Round(time.Second),
		health.Rules, health.Users)

	c := m.Counters
	fmt.Fprintf(out, "counters\n")
	for _, row := range []struct {
		name string
		v    uint64
	}{
		{"reports handled", c.ReportsHandled},
		{"entries processed", c.EntriesProcessed},
		{"violations detected", c.ViolationsDetected},
		{"rule activations", c.RuleActivations},
		{"rule deactivations", c.RuleDeactivations},
		{"rule expirations", c.RuleExpirations},
		{"pages modified", c.PagesModified},
		{"pages untouched", c.PagesUntouched},
	} {
		fmt.Fprintf(out, "  %-22s %d\n", row.name, row.v)
	}

	fmt.Fprintf(out, "\nlatency                  count      p50ms      p90ms      p99ms      maxms\n")
	printSummary := func(name string, count uint64, p50, p90, p99, max float64) {
		fmt.Fprintf(out, "  %-20s %7d %10.3f %10.3f %10.3f %10.3f\n", name, count, p50, p90, p99, max)
	}
	printSummary("report ingest", m.Ingest.Count, m.Ingest.P50Ms, m.Ingest.P90Ms, m.Ingest.P99Ms, m.Ingest.MaxMs)
	printSummary("page rewrite", m.Rewrite.Count, m.Rewrite.P50Ms, m.Rewrite.P90Ms, m.Rewrite.P99Ms, m.Rewrite.MaxMs)
	return nil
}

// liveGuard fetches a running server's /oak/v1/metrics and renders the guard
// (circuit-breaker) section for a terminal.
func liveGuard(out io.Writer, base string) error {
	base = strings.TrimSuffix(base, "/")
	client := &http.Client{Timeout: 10 * time.Second}

	var m origin.MetricsResponse
	if err := fetchJSON(client, base+origin.MetricsPathV1, &m); err != nil {
		return err
	}

	fmt.Fprintf(out, "== %s guard ==\n", base)
	if m.Guard == nil {
		fmt.Fprintln(out, "guard disabled (server running without a circuit breaker; start oakd with -guard-trip-threshold > 0)")
		return nil
	}
	g := m.Guard

	if len(g.Breakers) == 0 {
		fmt.Fprintln(out, "breakers: none tracked (every provider healthy)")
	} else {
		fmt.Fprintf(out, "%-28s %-10s %6s %6s %9s %6s %10s\n",
			"provider", "state", "bad", "good", "canaries", "trips", "open(ms)")
		for _, b := range g.Breakers {
			openFor := "-"
			if b.OpenForMs > 0 {
				openFor = fmt.Sprintf("%.0f", b.OpenForMs)
			}
			fmt.Fprintf(out, "%-28s %-10s %6d %6d %9d %6d %10s\n",
				b.Provider, b.State, b.ConsecutiveBad, b.HalfOpenGood,
				b.CanariesUsed, b.Trips, openFor)
		}
	}

	if len(g.Quarantines) > 0 {
		fmt.Fprintf(out, "quarantined providers: %s\n", strings.Join(g.Quarantines, ", "))
	} else {
		fmt.Fprintln(out, "quarantined providers: none")
	}
	if len(g.QuarantinedRules) > 0 {
		fmt.Fprintf(out, "quarantined rules:     %s\n", strings.Join(g.QuarantinedRules, ", "))
	} else {
		fmt.Fprintln(out, "quarantined rules:     none")
	}

	c := m.Counters
	fmt.Fprintf(out, "\ncounters\n")
	for _, row := range []struct {
		name string
		v    uint64
	}{
		{"canary activations", g.CanaryActivations},
		{"rewrite panics", g.RewritePanics},
		{"breaker trips", c.BreakerTrips},
		{"breaker closes", c.BreakerCloses},
		{"activations blocked", c.ActivationsBlocked},
		{"bulk deactivations", c.BulkDeactivations},
		{"rule quarantines", c.RuleQuarantines},
	} {
		fmt.Fprintf(out, "  %-22s %d\n", row.name, row.v)
	}
	return nil
}

// livePopulation fetches a running server's /oak/v1/population and renders
// the population-detection state for a terminal.
func livePopulation(out io.Writer, base string) error {
	base = strings.TrimSuffix(base, "/")
	client := &http.Client{Timeout: 10 * time.Second}

	var ps core.PopulationStatus
	resp, err := client.Get(base + origin.PopulationPathV1)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		fmt.Fprintln(out, "population detection disabled (start oakd with -synth-window > 0)")
		return nil
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", base+origin.PopulationPathV1, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&ps); err != nil {
		return fmt.Errorf("GET %s: decode: %w", base+origin.PopulationPathV1, err)
	}

	fmt.Fprintf(out, "== %s population ==\n", base)
	if len(ps.Degraded) == 0 {
		fmt.Fprintln(out, "degraded providers: none")
	} else {
		fmt.Fprintf(out, "%-28s %-8s %8s %12s %12s %s\n",
			"degraded provider", "manual", "ratio", "baseline(ms)", "window(ms)", "since")
		for _, d := range ps.Degraded {
			manual := "-"
			if d.Manual {
				manual = "manual"
			}
			fmt.Fprintf(out, "%-28s %-8s %8.2f %12.1f %12.1f %s\n",
				d.Provider, manual, d.Ratio, d.BaselineMs, d.WindowMs,
				d.Since.Format(time.RFC3339))
		}
	}

	if len(ps.Providers) > 0 {
		fmt.Fprintf(out, "\n%-28s %8s %10s %10s %10s\n",
			"provider baseline", "samples", "p50ms", "p75ms", "p99ms")
		for _, p := range ps.Providers {
			flag := ""
			if p.Degraded {
				flag = "  DEGRADED"
			}
			fmt.Fprintf(out, "%-28s %8d %10.1f %10.1f %10.1f%s\n",
				p.Provider, p.Samples, p.P50Ms, p.P75Ms, p.P99Ms, flag)
		}
	}

	if len(ps.TopProviders) > 0 {
		fmt.Fprintf(out, "\ntop providers by report appearances\n")
		for _, h := range ps.TopProviders {
			fmt.Fprintf(out, "  %-28s %d (±%d)\n", h.Item, h.Count, h.Error)
		}
	}

	fmt.Fprintf(out, "\ncounters\n")
	for _, row := range []struct {
		name string
		v    uint64
	}{
		{"population trips", ps.PopulationTrips},
		{"population recoveries", ps.PopulationRecoveries},
		{"synthesized activations", ps.SynthesizedActivations},
		{"synthesis blocked", ps.SynthesisBlocked},
		{"samples dropped", ps.SamplesDropped},
	} {
		fmt.Fprintf(out, "  %-24s %d\n", row.name, row.v)
	}
	fmt.Fprintf(out, "tracked providers: %d, sketch memory: %s\n",
		ps.TrackedProviders, byteSize(int64(ps.SketchMemoryBytes)))
	return nil
}

// liveMemory fetches a running server's /oak/v1/metrics and renders the
// profile-residency (spill tier) section for a terminal.
func liveMemory(out io.Writer, base string) error {
	base = strings.TrimSuffix(base, "/")
	client := &http.Client{Timeout: 10 * time.Second}

	var m origin.MetricsResponse
	if err := fetchJSON(client, base+origin.MetricsPathV1, &m); err != nil {
		return err
	}

	fmt.Fprintf(out, "== %s memory ==\n", base)
	if m.Spill == nil {
		fmt.Fprintln(out, "spill tier disabled (start oakd with -profile-cache or -profile-cache-bytes, plus -spill-dir)")
		return nil
	}
	sp := m.Spill

	mode := "ok"
	if sp.MemoryOnly {
		mode = "MEMORY-ONLY (spill I/O failed; resident memory no longer bounded)"
	}
	fmt.Fprintf(out, "mode: %s\n", mode)

	caps := "none"
	switch {
	case sp.MaxProfiles > 0 && sp.MaxBytes > 0:
		caps = fmt.Sprintf("%d profiles, %s", sp.MaxProfiles, byteSize(sp.MaxBytes))
	case sp.MaxProfiles > 0:
		caps = fmt.Sprintf("%d profiles", sp.MaxProfiles)
	case sp.MaxBytes > 0:
		caps = byteSize(sp.MaxBytes)
	}
	fmt.Fprintf(out, "resident cap (per engine): %s\n", caps)
	fmt.Fprintf(out, "profiles: %d resident (%s est. heap), %d spilled (%s in %d segments)\n",
		sp.ProfilesResident, byteSize(sp.ResidentBytes),
		sp.ProfilesSpilled, byteSize(sp.SpillBytes), sp.Segments)
	if len(sp.QuarantinedSegments) > 0 {
		fmt.Fprintf(out, "quarantined segments: %s\n", strings.Join(sp.QuarantinedSegments, ", "))
	}

	fmt.Fprintf(out, "\ncounters\n")
	for _, row := range []struct {
		name string
		v    uint64
	}{
		{"profile spills", sp.Spills},
		{"rehydrations", sp.Rehydrations},
		{"segment compactions", sp.SegmentCompactions},
		{"spill errors", sp.SpillErrors},
	} {
		fmt.Fprintf(out, "  %-22s %d\n", row.name, row.v)
	}

	r := sp.Rehydrate
	fmt.Fprintf(out, "\nrehydration latency      count      p50ms      p90ms      p99ms      maxms\n")
	fmt.Fprintf(out, "  %-20s %7d %10.3f %10.3f %10.3f %10.3f\n", "spill read", r.Count, r.P50Ms, r.P90Ms, r.P99Ms, r.MaxMs)
	return nil
}

// liveCluster fetches an oakgw gateway's detailed fleet view and counters
// and renders them for a terminal.
func liveCluster(out io.Writer, base string) error {
	base = strings.TrimSuffix(base, "/")
	client := &http.Client{Timeout: 10 * time.Second}

	var ch gateway.ClusterHealthResponse
	if err := fetchJSON(client, base+gateway.ClusterPathV1, &ch); err != nil {
		return err
	}
	var cm gateway.ClusterMetricsResponse
	if err := fetchJSON(client, base+origin.MetricsPathV1, &cm); err != nil {
		return err
	}

	fmt.Fprintf(out, "== %s cluster ==\n", base)
	fmt.Fprintf(out, "status %s, up %s, %d users, %d reports across the fleet\n\n",
		ch.Status, (time.Duration(ch.UptimeSeconds * float64(time.Second))).Round(time.Second),
		ch.Users, ch.Reports)

	fmt.Fprintf(out, "%-4s %-26s %-10s %-22s %6s %8s %10s\n",
		"idx", "backend", "state", "range", "fails", "users", "snapshot")
	row := func(idx string, bh gateway.BackendHealth) {
		rng := "-"
		if bh.Range != nil {
			rng = bh.Range.String()
		}
		users := "-"
		if bh.Healthz != nil {
			users = fmt.Sprintf("%d", bh.Healthz.Users)
		}
		snap := "none"
		if bh.SnapshotBytes > 0 {
			snap = fmt.Sprintf("%s/%.0fs", byteSize(int64(bh.SnapshotBytes)), bh.SnapshotAgeSeconds)
		}
		fmt.Fprintf(out, "%-4s %-26s %-10s %-22s %6d %8s %10s\n",
			idx, bh.Addr, bh.State, rng, bh.ConsecutiveFails, users, snap)
		if bh.LastError != "" {
			fmt.Fprintf(out, "     last error: %s\n", bh.LastError)
		}
	}
	for i, bh := range ch.Backends {
		row(fmt.Sprintf("%d", i), bh)
	}
	if ch.Standby != nil {
		row("sby", *ch.Standby)
	}

	if len(ch.OpenBreakers) > 0 {
		fmt.Fprintf(out, "\nopen breakers (fleet union):     %s\n", strings.Join(ch.OpenBreakers, ", "))
	} else {
		fmt.Fprintln(out, "\nopen breakers (fleet union):     none")
	}
	if len(ch.DegradedProviders) > 0 {
		fmt.Fprintf(out, "degraded providers (fleet union): %s\n", strings.Join(ch.DegradedProviders, ", "))
	} else {
		fmt.Fprintln(out, "degraded providers (fleet union): none")
	}

	g := cm.Gateway
	fmt.Fprintf(out, "\ngateway counters\n")
	for _, r := range []struct {
		name string
		v    uint64
	}{
		{"forwarded reports", g.ForwardedReports},
		{"forwarded pages", g.ForwardedPages},
		{"failovers", g.Failovers},
		{"probe cycles", g.ProbeCycles},
		{"breaker broadcasts", g.BreakerBroadcasts},
		{"degrade broadcasts", g.DegradeBroadcasts},
		{"replacements", g.Replacements},
	} {
		fmt.Fprintf(out, "  %-22s %d\n", r.name, r.v)
	}
	return nil
}

// fetchJSON GETs url and decodes the JSON body.
func fetchJSON(client *http.Client, url string, into any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		return fmt.Errorf("GET %s: decode: %w", url, err)
	}
	return nil
}

func readInput(name string) ([]byte, error) {
	if name == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(name)
}

// analyse prints one report's per-server view and violator flags.
func analyse(out io.Writer, name string, rep *report.Report, k float64) error {
	fmt.Fprintf(out, "== %s: user %s page %s (%d objects, %s) ==\n",
		name, rep.UserID, rep.Page, len(rep.Entries), byteSize(rep.TotalBytes()))

	servers := report.GroupByServer(rep)
	violations := core.DetectViolators(servers, k)
	violating := make(map[string]core.Violation, len(violations))
	for _, v := range violations {
		violating[v.Server.Addr] = v
	}

	sort.Slice(servers, func(i, j int) bool {
		return serverBadness(servers[i]) > serverBadness(servers[j])
	})
	fmt.Fprintf(out, "%-24s %-30s %10s %12s %s\n",
		"server", "hosts", "small(ms)", "large(KB/s)", "verdict")
	for _, s := range servers {
		verdict := "ok"
		if v, bad := violating[s.Addr]; bad {
			verdict = fmt.Sprintf("VIOLATOR (%s, %.0f beyond median)", v.Metric, v.Distance)
		}
		small, large := "-", "-"
		if s.SmallCount > 0 {
			small = fmt.Sprintf("%.1f", s.SmallMeanTimeMs)
		}
		if s.LargeCount > 0 {
			large = fmt.Sprintf("%.1f", s.LargeMeanTputBps/1024)
		}
		fmt.Fprintf(out, "%-24s %-30s %10s %12s %s\n",
			s.Addr, strings.Join(s.Hosts, ","), small, large, verdict)
	}
	durations := make([]float64, 0, len(rep.Entries))
	for _, e := range rep.Entries {
		durations = append(durations, e.DurationMillis)
	}
	if summary, err := stats.Summarize(durations); err == nil {
		fmt.Fprintf(out, "object download times (ms): %s\n", summary)
	}
	fmt.Fprintf(out, "violators: %d of %d servers\n\n", len(violations), len(servers))
	return nil
}

// serverBadness orders servers worst-first for display.
func serverBadness(s *report.ServerPerf) float64 {
	return s.SmallMeanTimeMs
}

// byteSize renders a byte count human-readably.
func byteSize(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
