// Command oakreport analyses Oak performance reports offline: it reads one
// or more report JSON files (the bodies clients POST to /oak/report),
// prints the per-server grouping the engine derives, and flags violators
// with the paper's MAD criterion — the same analysis the live server runs,
// available for debugging and auditing captured reports.
//
// Usage:
//
//	oakreport report1.json report2.json ...
//	oakreport -k 3 report.json        # stricter criterion
//	oakreport session.har             # browser-devtools HAR export
//	cat report.json | oakreport -     # read from stdin
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"oak/internal/core"
	"oak/internal/report"
	"oak/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "oakreport:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("oakreport", flag.ContinueOnError)
	k := fs.Float64("k", 2, "MAD multiplier for the violator criterion")
	har := fs.Bool("har", false, "treat inputs as HAR files (implied by a .har extension)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	files := fs.Args()
	if len(files) == 0 {
		return fmt.Errorf("no report files given (use - for stdin)")
	}
	for _, f := range files {
		data, err := readInput(f)
		if err != nil {
			return err
		}
		var rep *report.Report
		if *har || strings.HasSuffix(f, ".har") {
			rep, err = report.FromHAR(data, "har-session")
		} else {
			rep, err = report.Unmarshal(data)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
		if err := rep.Validate(); err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
		if err := analyse(out, f, rep, *k); err != nil {
			return err
		}
	}
	return nil
}

func readInput(name string) ([]byte, error) {
	if name == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(name)
}

// analyse prints one report's per-server view and violator flags.
func analyse(out io.Writer, name string, rep *report.Report, k float64) error {
	fmt.Fprintf(out, "== %s: user %s page %s (%d objects, %s) ==\n",
		name, rep.UserID, rep.Page, len(rep.Entries), byteSize(rep.TotalBytes()))

	servers := report.GroupByServer(rep)
	violations := core.DetectViolators(servers, k)
	violating := make(map[string]core.Violation, len(violations))
	for _, v := range violations {
		violating[v.Server.Addr] = v
	}

	sort.Slice(servers, func(i, j int) bool {
		return serverBadness(servers[i]) > serverBadness(servers[j])
	})
	fmt.Fprintf(out, "%-24s %-30s %10s %12s %s\n",
		"server", "hosts", "small(ms)", "large(KB/s)", "verdict")
	for _, s := range servers {
		verdict := "ok"
		if v, bad := violating[s.Addr]; bad {
			verdict = fmt.Sprintf("VIOLATOR (%s, %.0f beyond median)", v.Metric, v.Distance)
		}
		small, large := "-", "-"
		if s.SmallCount > 0 {
			small = fmt.Sprintf("%.1f", s.SmallMeanTimeMs)
		}
		if s.LargeCount > 0 {
			large = fmt.Sprintf("%.1f", s.LargeMeanTputBps/1024)
		}
		fmt.Fprintf(out, "%-24s %-30s %10s %12s %s\n",
			s.Addr, strings.Join(s.Hosts, ","), small, large, verdict)
	}
	durations := make([]float64, 0, len(rep.Entries))
	for _, e := range rep.Entries {
		durations = append(durations, e.DurationMillis)
	}
	if summary, err := stats.Summarize(durations); err == nil {
		fmt.Fprintf(out, "object download times (ms): %s\n", summary)
	}
	fmt.Fprintf(out, "violators: %d of %d servers\n\n", len(violations), len(servers))
	return nil
}

// serverBadness orders servers worst-first for display.
func serverBadness(s *report.ServerPerf) float64 {
	return s.SmallMeanTimeMs
}

// byteSize renders a byte count human-readably.
func byteSize(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
