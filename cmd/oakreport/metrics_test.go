package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"oak/internal/core"
	"oak/internal/origin"
)

func TestRunLiveMetrics(t *testing.T) {
	engine, err := core.NewEngine(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := engine.HandleReport(sampleReport()); err != nil {
			t.Fatal(err)
		}
	}
	engine.ModifyPage("u1", "/index.html", "<html></html>")
	ts := httptest.NewServer(origin.NewServer(engine))
	defer ts.Close()

	var out bytes.Buffer
	if err := run([]string{"-metrics", ts.URL + "/"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"status ok", "1 users",
		"reports handled", "3",
		"report ingest", "page rewrite", "p99ms",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunLiveMetricsUnreachable(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-metrics", "http://127.0.0.1:1"}, &out); err == nil {
		t.Error("unreachable server: want error")
	}
}
