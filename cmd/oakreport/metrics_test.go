package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"oak/internal/core"
	"oak/internal/origin"
)

func TestRunLiveMetrics(t *testing.T) {
	engine, err := core.NewEngine(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := engine.HandleReport(sampleReport()); err != nil {
			t.Fatal(err)
		}
	}
	engine.ModifyPage("u1", "/index.html", "<html></html>")
	ts := httptest.NewServer(origin.NewServer(engine))
	defer ts.Close()

	var out bytes.Buffer
	if err := run([]string{"-metrics", ts.URL + "/"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"status ok", "1 users",
		"reports handled", "3",
		"report ingest", "page rewrite", "p99ms",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunLiveGuard(t *testing.T) {
	engine, err := core.NewEngine(nil, core.WithGuard(core.GuardConfig{TripThreshold: 2}))
	if err != nil {
		t.Fatal(err)
	}
	engine.QuarantineProvider("cdn.example.com")
	ts := httptest.NewServer(origin.NewServer(engine))
	defer ts.Close()

	var out bytes.Buffer
	if err := run([]string{"-guard", ts.URL}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"cdn.example.com", "open",
		"quarantined providers: cdn.example.com",
		"quarantined rules:     none",
		"canary activations", "rewrite panics", "breaker trips",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunLiveGuardDisabled(t *testing.T) {
	engine, err := core.NewEngine(nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(origin.NewServer(engine))
	defer ts.Close()

	var out bytes.Buffer
	if err := run([]string{"-guard", ts.URL}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "guard disabled") {
		t.Errorf("want 'guard disabled' notice, got:\n%s", out.String())
	}
}

func TestRunLiveMetricsUnreachable(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-metrics", "http://127.0.0.1:1"}, &out); err == nil {
		t.Error("unreachable server: want error")
	}
}
