// Command oakgw runs Oak's cluster gateway: a single HTTP front that
// partitions the user population across a fleet of oakd backends by the
// engine's own FNV-1a user hash, fails requests over when a backend
// struggles, re-broadcasts guard breaker trips and population degraded
// episodes fleet-wide, and replaces dead nodes from the checksummed
// OAKSNAP2 snapshots it polls continuously.
//
// Usage:
//
//	oakgw -backends localhost:8081,localhost:8082,localhost:8083
//	oakgw -backends a:8081,b:8081 -standby s:8081 -addr :8090
//
// Backend i owns arc i of core.EqualRanges(N) over the 32-bit user-hash
// ring; a user's reports and pages always land on the backend owning their
// hash. The optional -standby backend owns no range: it is the preferred
// failover target for every partition and donates per-user-range state when
// a dead backend is replaced before its first snapshot poll.
//
// Endpoints:
//
//	/oak/v1/report            forwarded to the owner backend (batches split by user)
//	/oak/v1/metrics           gateway counters + every backend's metrics
//	/oak/v1/healthz           aggregated fleet health (status, users, breaker union)
//	/oak/v1/cluster           detailed per-backend view (state machine, snapshots)
//	/oak/v1/cluster/replace   POST ?backend=N&addr=host:port — replace a node
//	/oak/v1/cluster/drain     POST ?backend=N[&undrain=1]    — operator drain
//	everything else           proxied page serve to the cookie owner's backend
//
// Tuning flags mirror the gateway defaults: -probe-interval, -probe-timeout,
// -forward-timeout, -fail-threshold, -drain-threshold, -dead-threshold,
// -snapshot-interval. -v enables decision logging (state transitions,
// failovers, broadcasts, replacements).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"oak/internal/gateway"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "oakgw:", err)
		os.Exit(1)
	}
}

// oakgwConfig carries the parsed flags.
type oakgwConfig struct {
	addr             string
	backends         string
	standby          string
	probeInterval    time.Duration
	probeTimeout     time.Duration
	forwardTimeout   time.Duration
	failThreshold    int
	drainThreshold   int
	deadThreshold    int
	snapshotInterval time.Duration
	verbose          bool
}

func parseFlags(args []string) (oakgwConfig, error) {
	var cfg oakgwConfig
	fs := flag.NewFlagSet("oakgw", flag.ContinueOnError)
	fs.StringVar(&cfg.addr, "addr", ":8090", "listen address")
	fs.StringVar(&cfg.backends, "backends", "", "comma-separated oakd base URLs, one per partition (required)")
	fs.StringVar(&cfg.standby, "standby", "", "optional standby oakd: failover target and range donor for replacements")
	fs.DurationVar(&cfg.probeInterval, "probe-interval", gateway.DefaultProbeInterval, "health-probe and control-sweep period")
	fs.DurationVar(&cfg.probeTimeout, "probe-timeout", gateway.DefaultProbeTimeout, "timeout for one probe or control request")
	fs.DurationVar(&cfg.forwardTimeout, "forward-timeout", gateway.DefaultForwardTimeout, "timeout for one forwarded exchange, retries included")
	fs.IntVar(&cfg.failThreshold, "fail-threshold", gateway.DefaultFailThreshold, "consecutive probe failures before a backend is unhealthy")
	fs.IntVar(&cfg.drainThreshold, "drain-threshold", gateway.DefaultDrainThreshold, "consecutive probe failures before a backend is draining")
	fs.IntVar(&cfg.deadThreshold, "dead-threshold", gateway.DefaultDeadThreshold, "consecutive probe failures before a backend is dead")
	fs.DurationVar(&cfg.snapshotInterval, "snapshot-interval", gateway.DefaultSnapshotInterval, "how often to poll each backend's snapshot for replacement readiness")
	fs.BoolVar(&cfg.verbose, "v", false, "log gateway decisions (state transitions, failovers, broadcasts)")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// buildGateway constructs the gateway from parsed flags, testable without
// binding a listener.
func buildGateway(cfg oakgwConfig) (*gateway.Gateway, error) {
	var backends []string
	for _, b := range strings.Split(cfg.backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			backends = append(backends, b)
		}
	}
	if len(backends) == 0 {
		return nil, fmt.Errorf("-backends is required (comma-separated oakd base URLs)")
	}
	gcfg := gateway.Config{
		Backends:         backends,
		Standby:          cfg.standby,
		ProbeInterval:    cfg.probeInterval,
		ProbeTimeout:     cfg.probeTimeout,
		ForwardTimeout:   cfg.forwardTimeout,
		FailThreshold:    cfg.failThreshold,
		DrainThreshold:   cfg.drainThreshold,
		DeadThreshold:    cfg.deadThreshold,
		SnapshotInterval: cfg.snapshotInterval,
	}
	if cfg.verbose {
		gcfg.Logf = log.Printf
	}
	return gateway.NewGateway(gcfg)
}

func run(args []string) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}
	gw, err := buildGateway(cfg)
	if err != nil {
		return err
	}
	gw.Start()
	defer gw.Close()

	srv := &http.Server{Addr: cfg.addr, Handler: gw}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("oakgw listening on %s (%d backends)", cfg.addr, strings.Count(cfg.backends, ",")+1)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		log.Printf("oakgw: %v, shutting down", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
	}
	return nil
}
