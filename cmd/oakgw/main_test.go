package main

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParseFlagsDefaults(t *testing.T) {
	cfg, err := parseFlags([]string{"-backends", "a:1,b:2"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.backends != "a:1,b:2" {
		t.Fatalf("backends = %q", cfg.backends)
	}
	if cfg.addr != ":8090" {
		t.Fatalf("addr = %q", cfg.addr)
	}
	if cfg.probeInterval != 500*time.Millisecond {
		t.Fatalf("probeInterval = %v", cfg.probeInterval)
	}
	if cfg.deadThreshold != 5 {
		t.Fatalf("deadThreshold = %d", cfg.deadThreshold)
	}
}

func TestBuildGatewayRequiresBackends(t *testing.T) {
	cfg, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := buildGateway(cfg); err == nil {
		t.Fatal("expected error without -backends")
	}
	cfg.backends = " , ,"
	if _, err := buildGateway(cfg); err == nil {
		t.Fatal("expected error with blank backends")
	}
}

func TestBuildGatewayServes(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-backends", "localhost:18081, localhost:18082 ,localhost:18083",
		"-standby", "localhost:18084",
		"-probe-interval", "50ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	gw, err := buildGateway(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	if got := len(gw.BackendStates()); got != 3 {
		t.Fatalf("backends = %d, want 3", got)
	}

	// The aggregated healthz answers even with no backend reachable.
	rec := httptest.NewRecorder()
	gw.ServeHTTP(rec, httptest.NewRequest("GET", "/oak/v1/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("healthz status %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"backends"`) {
		t.Fatalf("healthz body missing backends: %s", rec.Body.String())
	}
}
