package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"oak"
)

// oakUnmarshal aliases the facade helper for test brevity.
var oakUnmarshal = oak.UnmarshalReport

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func newSiteDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "index.html"), "<html>home</html>")
	writeFile(t, filepath.Join(dir, "blog", "post.html"), "<html>post</html>")
	writeFile(t, filepath.Join(dir, "notes.txt"), "not a page")
	return dir
}

func TestBuildServerServesPages(t *testing.T) {
	dir := newSiteDir(t)
	server, pages, nRules, err := buildServer(oakdConfig{root: dir, ruleFile: "", verbose: false})
	if err != nil {
		t.Fatal(err)
	}
	if pages != 2 || nRules != 0 {
		t.Errorf("pages=%d rules=%d, want 2/0", pages, nRules)
	}
	ts := httptest.NewServer(server)
	defer ts.Close()

	for _, path := range []string{"/index.html", "/", "/blog/post.html"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d", path, resp.StatusCode)
		}
		if !strings.Contains(string(body), "<html>") {
			t.Errorf("GET %s body = %q", path, body)
		}
	}
	resp, err := http.Get(ts.URL + "/notes.txt")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("non-HTML file served: %d", resp.StatusCode)
	}
}

func TestBuildServerWithDSLRules(t *testing.T) {
	dir := newSiteDir(t)
	ruleFile := filepath.Join(dir, "rules.oak")
	writeFile(t, ruleFile, `
rule r1 {
  type 1
  default "<div>ad</div>"
  ttl 0
  scope *
}
`)
	_, _, nRules, err := buildServer(oakdConfig{root: dir, ruleFile: ruleFile, verbose: true})
	if err != nil {
		t.Fatal(err)
	}
	if nRules != 1 {
		t.Errorf("rules = %d, want 1", nRules)
	}
}

func TestBuildServerWithJSONRules(t *testing.T) {
	dir := newSiteDir(t)
	ruleFile := filepath.Join(dir, "rules.json")
	writeFile(t, ruleFile, `[{"id":"r1","type":1,"default":"<div>ad</div>","scope":"*","ttlMillis":0}]`)
	_, _, nRules, err := buildServer(oakdConfig{root: dir, ruleFile: ruleFile, verbose: false})
	if err != nil {
		t.Fatal(err)
	}
	if nRules != 1 {
		t.Errorf("rules = %d, want 1", nRules)
	}
}

func TestBuildServerErrors(t *testing.T) {
	dir := newSiteDir(t)
	if _, _, _, err := buildServer(oakdConfig{root: dir, ruleFile: filepath.Join(dir, "missing.oak"), verbose: false}); err == nil {
		t.Error("missing rule file: want error")
	}
	bad := filepath.Join(dir, "bad.oak")
	writeFile(t, bad, "rule broken {")
	if _, _, _, err := buildServer(oakdConfig{root: dir, ruleFile: bad, verbose: false}); err == nil {
		t.Error("bad rule file: want error")
	}
	empty := t.TempDir()
	if _, _, _, err := buildServer(oakdConfig{root: empty, ruleFile: "", verbose: false}); err == nil {
		t.Error("empty page dir: want error")
	}
}

func TestRunFlagErrors(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag: want error")
	}
}

func TestStatePersistence(t *testing.T) {
	dir := newSiteDir(t)
	ruleFile := filepath.Join(dir, "rules.oak")
	writeFile(t, ruleFile, `
rule swap {
  type 2
  default "<img src=\"http://slow.example/x.png\">"
  alt "<img src=\"http://fast.example/x.png\">"
  ttl 0
  scope *
}
`)
	server, _, _, err := buildServer(oakdConfig{root: dir, ruleFile: ruleFile, verbose: false})
	if err != nil {
		t.Fatal(err)
	}
	// Simulate learned state: one report that activates the rule.
	rep := `{"userId":"u1","page":"/index.html","entries":[
	  {"url":"http://slow.example/x.png","serverAddr":"9.9.9.9","sizeBytes":1000,"durationMillis":3000},
	  {"url":"http://a.example/a.png","serverAddr":"1.1.1.1","sizeBytes":1000,"durationMillis":100},
	  {"url":"http://b.example/b.png","serverAddr":"2.2.2.2","sizeBytes":1000,"durationMillis":110},
	  {"url":"http://c.example/c.png","serverAddr":"3.3.3.3","sizeBytes":1000,"durationMillis":95}
	]}`
	parsed, err := oakUnmarshal([]byte(rep))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.Engine().HandleReport(parsed); err != nil {
		t.Fatal(err)
	}

	statePath := filepath.Join(dir, "state.json")
	if err := saveState(server.Engine(), statePath); err != nil {
		t.Fatal(err)
	}

	// A restarted server restores the activation.
	server2, _, _, err := buildServer(oakdConfig{root: dir, ruleFile: ruleFile, verbose: false})
	if err != nil {
		t.Fatal(err)
	}
	if err := loadState(server2.Engine(), statePath); err != nil {
		t.Fatal(err)
	}
	snap, ok := server2.Engine().Snapshot("u1")
	if !ok || len(snap.ActiveRules) != 1 {
		t.Errorf("restored snapshot = %+v", snap)
	}
}

func TestLoadStateCorruptFallsBackToBackup(t *testing.T) {
	dir := newSiteDir(t)
	server, _, _, err := buildServer(oakdConfig{root: dir, ruleFile: "", verbose: false})
	if err != nil {
		t.Fatal(err)
	}
	statePath := filepath.Join(dir, "state.json")
	if err := saveState(server.Engine(), statePath); err != nil {
		t.Fatal(err)
	}
	// Save again so the first good snapshot rotates into .bak, then corrupt
	// the primary mid-file, as a torn write or disk fault would.
	if err := saveState(server.Engine(), statePath); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(statePath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(statePath, data, 0o600); err != nil {
		t.Fatal(err)
	}

	server2, _, _, err := buildServer(oakdConfig{root: dir, ruleFile: "", verbose: false})
	if err != nil {
		t.Fatal(err)
	}
	if err := loadState(server2.Engine(), statePath); err != nil {
		t.Errorf("corrupt primary with good backup must not abort boot: %v", err)
	}
	if got := server2.Engine().StateRecoveries(); got != 1 {
		t.Errorf("StateRecoveries = %d, want 1", got)
	}
}

func TestSaveStateLeavesNoTempFile(t *testing.T) {
	dir := newSiteDir(t)
	server, _, _, err := buildServer(oakdConfig{root: dir, ruleFile: "", verbose: false})
	if err != nil {
		t.Fatal(err)
	}
	statePath := filepath.Join(dir, "state.json")
	if err := saveState(server.Engine(), statePath); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(statePath + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("temp file left behind after save: %v", err)
	}
	// A second save rotates the previous snapshot into .bak.
	if err := saveState(server.Engine(), statePath); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(statePath + ".bak"); err != nil {
		t.Errorf("second save did not rotate a backup: %v", err)
	}
}

func TestLoadStateMissingFileOK(t *testing.T) {
	dir := newSiteDir(t)
	server, _, _, err := buildServer(oakdConfig{root: dir, ruleFile: "", verbose: false})
	if err != nil {
		t.Fatal(err)
	}
	if err := loadState(server.Engine(), filepath.Join(dir, "absent.json")); err != nil {
		t.Errorf("missing state file should be fresh start, got %v", err)
	}
}

func TestPersistPeriodicallyStops(t *testing.T) {
	dir := newSiteDir(t)
	server, _, _, err := buildServer(oakdConfig{root: dir, ruleFile: "", verbose: false})
	if err != nil {
		t.Fatal(err)
	}
	statePath := filepath.Join(dir, "state.json")
	stop := persistPeriodically(server.Engine(), statePath, 10*time.Millisecond)
	time.Sleep(35 * time.Millisecond)
	stop()
	if _, err := os.Stat(statePath); err != nil {
		t.Errorf("periodic save never wrote %s: %v", statePath, err)
	}
}

func TestPersistStopTakesFinalSave(t *testing.T) {
	// Even when the interval never fires, stopping the loop persists once —
	// this is the graceful-shutdown save path.
	dir := newSiteDir(t)
	server, _, _, err := buildServer(oakdConfig{root: dir, ruleFile: "", verbose: false})
	if err != nil {
		t.Fatal(err)
	}
	statePath := filepath.Join(dir, "state.json")
	stop := persistPeriodically(server.Engine(), statePath, time.Hour)
	if _, err := os.Stat(statePath); err == nil {
		t.Fatal("state written before stop despite 1h interval")
	}
	stop()
	if _, err := os.Stat(statePath); err != nil {
		t.Errorf("stop() did not take a final save: %v", err)
	}
}

func TestRunGracefulShutdownPersistsState(t *testing.T) {
	// Keep the test process alive across the self-signal even if run has
	// not yet installed its handler.
	guard := make(chan os.Signal, 1)
	signal.Notify(guard, syscall.SIGTERM)
	defer signal.Stop(guard)

	dir := newSiteDir(t)
	statePath := filepath.Join(dir, "state.json")
	errCh := make(chan error, 1)
	go func() {
		errCh <- run([]string{
			"-root", dir, "-addr", "127.0.0.1:0",
			"-state", statePath, "-save-interval", "1h",
		})
	}()
	time.Sleep(200 * time.Millisecond) // let the listener and handler come up
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM, want nil (graceful)", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not shut down after SIGTERM")
	}
	if _, err := os.Stat(statePath); err != nil {
		t.Errorf("graceful shutdown skipped the final state save: %v", err)
	}
}
