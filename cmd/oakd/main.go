// Command oakd runs an Oak-fronted origin web server over a directory of
// HTML pages and an operator rule file.
//
// Usage:
//
//	oakd -root ./site -rules ./rules.oak [-addr :8080] [-v]
//	     [-state oak-state.json] [-save-interval 5m] [-pprof 127.0.0.1:6060]
//	     [-shards N] [-ingest-queue N] [-ingest-workers N]
//
// Every *.html file under -root is served at its relative path (index.html
// also at the directory path). Clients receive identifying cookies, pages
// are rewritten per user according to activated rules, and performance
// reports are accepted at POST /oak/report — one JSON report per request,
// or an NDJSON batch (Content-Type application/x-ndjson, one report per
// line). The rule file uses the DSL of internal/rules.ParseDSL (heredoc
// blocks; see the repository README), or JSON when it ends in .json.
//
// Scaling: per-user state is sharded across -shards lock stripes (0 = four
// per CPU) so reports for different users ingest in parallel. -ingest-queue
// enables the batched-ingest pipeline: reports are queued (bounded,
// backpressure when full) and drained by -ingest-workers workers. See
// docs/OPERATIONS.md for sizing guidance.
//
// Observability: the server answers GET /oak/metrics (counters + latency
// histograms), /oak/healthz (liveness), /oak/trace (recent engine
// decisions) and /oak/audit (operator summary); -pprof additionally serves
// net/http/pprof on a separate admin listener. See docs/OPERATIONS.md.
//
// On SIGINT/SIGTERM oakd shuts the listener down gracefully and, with
// -state, persists engine state before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"oak"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "oakd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs2 := flag.NewFlagSet("oakd", flag.ContinueOnError)
	var (
		root      = fs2.String("root", ".", "directory of HTML pages to serve")
		ruleFile  = fs2.String("rules", "", "rule file (DSL, or JSON if *.json)")
		addr      = fs2.String("addr", ":8080", "listen address")
		verbose   = fs2.Bool("v", false, "log engine decisions")
		stateFile = fs2.String("state", "", "persist per-user state to this file (loaded at boot, saved periodically and on shutdown)")
		saveEvery = fs2.Duration("save-interval", 5*time.Minute, "how often to persist state (with -state)")
		pprofAddr = fs2.String("pprof", "", "serve net/http/pprof on this separate admin address (e.g. 127.0.0.1:6060); off when empty")
		shards    = fs2.Int("shards", 0, "lock-striped shards for per-user state (rounded up to a power of two; 0 = four per CPU)")
		queueLen  = fs2.Int("ingest-queue", 0, "per-worker bounded queue length for batched ingest (0 = synchronous ingest, no pipeline)")
		workers   = fs2.Int("ingest-workers", 0, "batched-ingest worker count (with -ingest-queue; 0 = one per CPU)")
	)
	if err := fs2.Parse(args); err != nil {
		return err
	}

	server, pages, nRules, err := buildServer(oakdConfig{
		root: *root, ruleFile: *ruleFile, verbose: *verbose,
		shards: *shards, queueLen: *queueLen, workers: *workers,
	})
	if err != nil {
		return err
	}
	if *stateFile != "" {
		if err := loadState(server.Engine(), *stateFile); err != nil {
			return err
		}
		stop := persistPeriodically(server.Engine(), *stateFile, *saveEvery)
		defer stop()
	}
	// Deferred after the state defer, so on any exit path the pipeline is
	// drained into the shards before the final state save runs.
	defer server.Engine().Close()

	if *pprofAddr != "" {
		admin := &http.Server{Addr: *pprofAddr, Handler: pprofMux()}
		go func() {
			if err := admin.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("oakd: pprof listener: %v", err)
			}
		}()
		defer admin.Close()
		log.Printf("oakd: pprof admin listener on %s", *pprofAddr)
	}

	srv := &http.Server{Addr: *addr, Handler: server}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	log.Printf("oakd: serving %d pages from %s with %d rules on %s", pages, *root, nRules, *addr)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		// Graceful shutdown: stop accepting, drain in-flight requests, then
		// let the deferred persistPeriodically stop() take the final save.
		log.Printf("oakd: %v: shutting down", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return srv.Shutdown(ctx)
	}
}

// pprofMux routes the standard net/http/pprof handlers on a private mux so
// the profiling surface never mounts on the public listener.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// loadState restores engine state from the file if it exists; a missing
// file is a fresh deployment, not an error.
func loadState(engine *oak.Engine, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("read state: %w", err)
	}
	if err := engine.ImportState(data); err != nil {
		return fmt.Errorf("import state: %w", err)
	}
	log.Printf("oakd: restored state for %d users from %s", engine.Users(), path)
	return nil
}

// saveState atomically persists engine state.
func saveState(engine *oak.Engine, path string) error {
	data, err := engine.ExportState()
	if err != nil {
		return fmt.Errorf("export state: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o600); err != nil {
		return fmt.Errorf("write state: %w", err)
	}
	return os.Rename(tmp, path)
}

// persistPeriodically saves the state on an interval. The returned stop
// function halts the loop and takes one final save, so callers deferring it
// persist on any exit path — including signal-driven graceful shutdown
// (signal handling lives in run, not here, so no cleanup is skipped).
func persistPeriodically(engine *oak.Engine, path string, every time.Duration) (stop func()) {
	stopCh := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		ticker := time.NewTicker(every)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				if err := saveState(engine, path); err != nil {
					log.Printf("oakd: periodic save: %v", err)
				}
			case <-stopCh:
				return
			}
		}
	}()
	return func() {
		close(stopCh)
		<-done
		if err := saveState(engine, path); err != nil {
			log.Printf("oakd: final save: %v", err)
		}
	}
}

// oakdConfig is what buildServer needs from the flags.
type oakdConfig struct {
	root     string
	ruleFile string
	verbose  bool
	shards   int
	queueLen int
	workers  int
}

// buildServer assembles the Oak server from a page directory and a rule
// file. Split from run so it is testable without binding a listener.
func buildServer(cfg oakdConfig) (*oak.Server, int, int, error) {
	var ruleSet []*oak.Rule
	if cfg.ruleFile != "" {
		data, err := os.ReadFile(cfg.ruleFile)
		if err != nil {
			return nil, 0, 0, fmt.Errorf("read rules: %w", err)
		}
		if strings.HasSuffix(cfg.ruleFile, ".json") {
			ruleSet, err = oak.ParseRulesJSON(data)
		} else {
			ruleSet, err = oak.ParseRules(string(data))
		}
		if err != nil {
			return nil, 0, 0, err
		}
	}

	for _, w := range oak.LintRules(ruleSet) {
		log.Printf("oakd: lint: %s", w)
	}

	var opts []oak.EngineOption
	if cfg.verbose {
		opts = append(opts, oak.WithLogf(log.Printf))
	}
	if cfg.shards > 0 {
		opts = append(opts, oak.WithShards(cfg.shards))
	}
	if cfg.queueLen > 0 {
		opts = append(opts, oak.WithIngestPipeline(oak.IngestConfig{
			Workers:  cfg.workers,
			QueueLen: cfg.queueLen,
		}))
	}
	engine, err := oak.NewEngine(ruleSet, opts...)
	if err != nil {
		return nil, 0, 0, err
	}
	server := oak.NewServer(engine)
	pages, err := server.LoadPages(os.DirFS(cfg.root))
	if err != nil {
		return nil, 0, 0, err
	}
	if pages == 0 {
		return nil, 0, 0, fmt.Errorf("no *.html pages under %s", cfg.root)
	}
	return server, pages, len(ruleSet), nil
}
