// Command oakd runs an Oak-fronted origin web server over a directory of
// HTML pages and an operator rule file.
//
// Usage:
//
//	oakd -root ./site -rules ./rules.oak [-addr :8080] [-v]
//	     [-state oak-state.json] [-save-interval 5m] [-pprof 127.0.0.1:6060]
//	     [-shards N] [-ingest-queue N] [-ingest-workers N]
//	     [-max-body-bytes 4194304]
//	     [-shed-wait 50ms] [-shed-retry-after 1s] [-rewrite-budget 500ms]
//	     [-rewrite-cache 1024]
//	     [-profile-cache 100000] [-profile-cache-bytes 0] [-spill-dir ./spill]
//	     [-guard-trip-threshold 5] [-guard-halfopen-canaries 3]
//	     [-probe-interval 30s]
//	     [-synth-window 2m] [-synth-degrade-factor 1.5] [-synth-quantile 0.75]
//	     [-synth-min-samples 20] [-synth-min-baseline-samples 20]
//	     [-synth-max-providers 64]
//
// Every *.html file under -root is served at its relative path (index.html
// also at the directory path). Clients receive identifying cookies, pages
// are rewritten per user according to activated rules, and performance
// reports are accepted at POST /oak/v1/report, negotiated by Content-Type:
// one JSON report per request (application/json), an NDJSON batch
// (application/x-ndjson, one report per line), one compact OAKRPT1 binary
// report (application/x-oak-report), or a binary batch of length-prefixed
// frames (application/x-oak-report-batch). All four formats are always on —
// there is nothing to enable; clients opt in per request. -max-body-bytes
// bounds a single report body (batches may total 16× the bound); see
// docs/OPERATIONS.md, "Report wire formats". The unversioned /oak/report
// path remains a byte-identical alias for existing clients. The rule file
// format is auto-detected: JSON (array or {"rules": [...]} document) or the
// DSL of internal/rules.ParseDSL (heredoc blocks; see the repository
// README).
//
// Scaling: per-user state is sharded across -shards lock stripes (0 = four
// per CPU) so reports for different users ingest in parallel. -ingest-queue
// enables the batched-ingest pipeline: reports are queued (bounded,
// backpressure when full) and drained by -ingest-workers workers. On the
// serve side, -rewrite-cache bounds a cache of whole rewritten pages keyed
// by page content + activation fingerprint, so repeat requests from users
// with stable activations skip the rewrite entirely (0 disables). See
// docs/OPERATIONS.md for sizing guidance.
//
// Resilience: -shed-wait switches the pipeline from blocking backpressure
// to load shedding — a report that cannot enqueue within the wait is
// refused with 503 + Retry-After (-shed-retry-after) instead of holding
// the connection. -rewrite-budget bounds how long page delivery waits for
// the per-user rewrite before serving the page unmodified. State saved via
// -state is written crash-safely (checksummed, fsync + atomic rename, with
// a rotating .bak); a corrupt or torn snapshot at boot falls back to the
// backup instead of aborting. See docs/OPERATIONS.md, "Failure modes and
// recovery".
//
// Memory: -profile-cache (profiles) and/or -profile-cache-bytes (estimated
// heap bytes) cap how much per-user state stays resident; profiles beyond
// the cap are spilled — coldest first, fsynced before eviction — to compact
// append-log segments under -spill-dir and rehydrated transparently on the
// user's next report or page. A spill-path disk fault degrades the engine to
// memory-only mode (still serving, healthz "degraded") instead of failing.
// Residency counters appear under "spill" in /oak/v1/metrics. See
// docs/OPERATIONS.md, "Memory & the spill tier".
//
// Guardrails: -guard-trip-threshold (0 disables) arms per-provider circuit
// breakers over the alternates the rules steer users to — a provider that
// keeps violating across the whole population is quarantined (new
// activations blocked, existing ones bulk-deactivated) until it proves
// itself through a bounded number of canary activations
// (-guard-halfopen-canaries). -probe-interval additionally probes each
// alternate actively so a dead provider is caught even between user
// reports. Breaker states appear under "guard" in /oak/metrics and open
// breakers in /oak/healthz. See docs/OPERATIONS.md, "Guardrails".
//
// Population detection: -synth-window (0 disables) turns on cross-user
// detection and rule synthesis — every report feeds per-provider download-
// time sketches, a provider whose window quantile degrades by
// -synth-degrade-factor against its own trailing baseline is flagged, and
// while it stays flagged the catalog's matching rules are activated for
// affected users on their next report, bypassing the per-user violation
// gate. Synthesized activations ride the same guard breakers as organic
// ones, so a bad synthetic rule self-rolls-back. Flagged providers appear
// at GET /oak/v1/population and under "population" in /oak/metrics. See
// docs/OPERATIONS.md, "Population detection & rule synthesis".
//
// Observability: the server answers GET /oak/v1/metrics (counters + latency
// histograms), /oak/v1/healthz (liveness), /oak/v1/trace (recent engine
// decisions) and /oak/v1/audit (operator summary) — each also at its legacy
// unversioned /oak/... alias; -pprof additionally serves net/http/pprof on
// a separate admin listener. See docs/OPERATIONS.md.
//
// On SIGINT/SIGTERM oakd shuts the listener down gracefully and, with
// -state, persists engine state before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"oak"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "oakd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs2 := flag.NewFlagSet("oakd", flag.ContinueOnError)
	var (
		root      = fs2.String("root", ".", "directory of HTML pages to serve")
		ruleFile  = fs2.String("rules", "", "rule file (DSL, or JSON if *.json)")
		addr      = fs2.String("addr", ":8080", "listen address")
		verbose   = fs2.Bool("v", false, "log engine decisions")
		stateFile = fs2.String("state", "", "persist per-user state to this file (loaded at boot, saved periodically and on shutdown)")
		saveEvery = fs2.Duration("save-interval", 5*time.Minute, "how often to persist state (with -state)")
		pprofAddr = fs2.String("pprof", "", "serve net/http/pprof on this separate admin address (e.g. 127.0.0.1:6060); off when empty")
		shards    = fs2.Int("shards", 0, "lock-striped shards for per-user state (rounded up to a power of two; 0 = four per CPU)")
		queueLen  = fs2.Int("ingest-queue", 0, "per-worker bounded queue length for batched ingest (0 = synchronous ingest, no pipeline)")
		workers   = fs2.Int("ingest-workers", 0, "batched-ingest worker count (with -ingest-queue; 0 = one per CPU)")
		maxBody   = fs2.Int64("max-body-bytes", 0, "single-report body bound in bytes, any wire format; batch bodies may total 16x this (0 = 4 MB default)")
		shedWait  = fs2.Duration("shed-wait", -1, "shed reports that cannot enqueue within this wait, 503 + Retry-After (with -ingest-queue; negative = block instead of shedding)")
		shedRetry = fs2.Duration("shed-retry-after", 0, "retry horizon advertised on shed responses (with -shed-wait; 0 = 1s default)")
		rewriteB  = fs2.Duration("rewrite-budget", 0, "serve the unmodified page if the per-user rewrite takes longer than this (0 = 500ms default, negative = unbounded)")
		rcSize    = fs2.Int("rewrite-cache", 1024, "rewrite-cache capacity in entries (whole rewritten pages keyed by content + activation fingerprint; 0 disables)")
		profCache = fs2.Int("profile-cache", 0, "max resident user profiles; colder profiles spill to -spill-dir (0 = unbounded, no spill tier)")
		profBytes = fs2.Int64("profile-cache-bytes", 0, "max estimated resident profile bytes; colder profiles spill to -spill-dir (0 = unbounded)")
		spillDir  = fs2.String("spill-dir", "", "directory for spilled-profile segment files (required with -profile-cache or -profile-cache-bytes)")
		guardTrip = fs2.Int("guard-trip-threshold", 5, "consecutive bad population-level outcomes that trip an alternate provider's circuit breaker (0 disables the guard)")
		guardCan  = fs2.Int("guard-halfopen-canaries", 3, "canary activations a half-open breaker admits per recovery attempt (with -guard-trip-threshold)")
		probeIvl  = fs2.Duration("probe-interval", 0, "actively probe each alternate provider this often, feeding the breakers (0 disables; needs the guard enabled)")
		synthWin  = fs2.Duration("synth-window", 0, "population-detection aggregation window; enables cross-user detection and rule synthesis (0 disables)")
		synthDeg  = fs2.Float64("synth-degrade-factor", 0, "flag a provider when its window quantile exceeds this factor times its trailing baseline (with -synth-window; 0 = 1.5 default)")
		synthQ    = fs2.Float64("synth-quantile", 0, "compared download-time quantile, in (0,1) (with -synth-window; 0 = 0.75 default)")
		synthMin  = fs2.Int("synth-min-samples", 0, "minimum window samples before a provider is judged (with -synth-window; 0 = 20 default)")
		synthMinB = fs2.Int("synth-min-baseline-samples", 0, "minimum baseline weight before a provider is judged (with -synth-window; 0 = min-samples)")
		synthMaxP = fs2.Int("synth-max-providers", 0, "provider sketches tracked per shard window (with -synth-window; 0 = 64 default)")
	)
	if err := fs2.Parse(args); err != nil {
		return err
	}

	server, pages, nRules, err := buildServer(oakdConfig{
		root: *root, ruleFile: *ruleFile, verbose: *verbose,
		shards: *shards, queueLen: *queueLen, workers: *workers,
		maxBodyBytes: *maxBody,
		shedWait:     *shedWait, shedRetry: *shedRetry, rewriteBudget: *rewriteB,
		rewriteCache: *rcSize,
		profileCache: *profCache, profileCacheBytes: *profBytes, spillDir: *spillDir,
		guardTrip: *guardTrip, guardCanaries: *guardCan,
		synthWindow: *synthWin, synthDegrade: *synthDeg, synthQuantile: *synthQ,
		synthMinSamples: *synthMin, synthMinBaseline: *synthMinB, synthMaxProviders: *synthMaxP,
	})
	if err != nil {
		return err
	}
	if *probeIvl > 0 && *guardTrip > 0 {
		prober := &oak.Prober{
			Targets:  server.Engine().AlternateProviders,
			Report:   server.Engine().ObserveProviderOutcome,
			Interval: *probeIvl,
			Logf:     log.Printf,
		}
		prober.Start()
		defer prober.Stop()
		log.Printf("oakd: probing alternate providers every %v", *probeIvl)
	}
	if *stateFile != "" {
		if err := loadState(server.Engine(), *stateFile); err != nil {
			return err
		}
		stop := persistPeriodically(server.Engine(), *stateFile, *saveEvery)
		defer stop()
	}
	// Deferred after the state defer, so on any exit path the pipeline is
	// drained into the shards before the final state save runs.
	defer server.Engine().Close()

	if *pprofAddr != "" {
		admin := &http.Server{Addr: *pprofAddr, Handler: pprofMux()}
		go func() {
			if err := admin.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("oakd: pprof listener: %v", err)
			}
		}()
		defer admin.Close()
		log.Printf("oakd: pprof admin listener on %s", *pprofAddr)
	}

	srv := &http.Server{Addr: *addr, Handler: server}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	log.Printf("oakd: serving %d pages from %s with %d rules on %s", pages, *root, nRules, *addr)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		// Graceful shutdown: stop accepting, drain in-flight requests, then
		// let the deferred persistPeriodically stop() take the final save.
		log.Printf("oakd: %v: shutting down", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return srv.Shutdown(ctx)
	}
}

// pprofMux routes the standard net/http/pprof handlers on a private mux so
// the profiling surface never mounts on the public listener.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// loadState restores engine state via the crash-safe read path: a missing
// file is a fresh deployment, a corrupt or version-skewed primary falls
// back to the rotating .bak (one save interval of learning lost, not all
// of it), and only a deployment with neither readable is an error-free
// fresh start. Boot never aborts over a bad state file.
func loadState(engine *oak.Engine, path string) error {
	src, err := engine.LoadStateFile(path)
	if err != nil {
		return fmt.Errorf("load state: %w", err)
	}
	switch src {
	case oak.StateSnapshot:
		log.Printf("oakd: restored state for %d users from %s", engine.Users(), path)
	case oak.StateBackup:
		log.Printf("oakd: primary state file unusable; recovered %d users from backup %s", engine.Users(), path+".bak")
	}
	return nil
}

// saveState persists engine state crash-safely: checksummed snapshot,
// fsync before an atomic rename, previous snapshot rotated to .bak.
func saveState(engine *oak.Engine, path string) error {
	return engine.SaveStateFile(path)
}

// persistPeriodically saves the state on an interval. The returned stop
// function halts the loop and takes one final save, so callers deferring it
// persist on any exit path — including signal-driven graceful shutdown
// (signal handling lives in run, not here, so no cleanup is skipped).
func persistPeriodically(engine *oak.Engine, path string, every time.Duration) (stop func()) {
	stopCh := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		ticker := time.NewTicker(every)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				if err := saveState(engine, path); err != nil {
					log.Printf("oakd: periodic save: %v", err)
				}
			case <-stopCh:
				return
			}
		}
	}()
	return func() {
		close(stopCh)
		<-done
		if err := saveState(engine, path); err != nil {
			log.Printf("oakd: final save: %v", err)
		}
	}
}

// oakdConfig is what buildServer needs from the flags.
type oakdConfig struct {
	root          string
	ruleFile      string
	verbose       bool
	shards        int
	queueLen      int
	workers       int
	maxBodyBytes  int64         // single-report body bound; <= 0 takes the 4 MB default
	shedWait      time.Duration // negative = no shedding (blocking backpressure)
	shedRetry     time.Duration
	rewriteBudget time.Duration // 0 = library default, negative = unbounded
	rewriteCache  int           // entries; <= 0 disables the rewrite cache
	guardTrip     int           // breaker trip threshold; <= 0 disables the guard
	guardCanaries int           // half-open canary budget (with guardTrip > 0)

	// Profile residency (the spill tier). Either cap > 0 enables it and
	// then spillDir is required.
	profileCache      int
	profileCacheBytes int64
	spillDir          string

	// Population detection (<= 0 window disables; zero fields take the
	// library defaults).
	synthWindow       time.Duration
	synthDegrade      float64
	synthQuantile     float64
	synthMinSamples   int
	synthMinBaseline  int
	synthMaxProviders int
}

// buildServer assembles the Oak server from a page directory and a rule
// file. Split from run so it is testable without binding a listener.
func buildServer(cfg oakdConfig) (*oak.Server, int, int, error) {
	var ruleSet []*oak.Rule
	if cfg.ruleFile != "" {
		f, err := os.Open(cfg.ruleFile)
		if err != nil {
			return nil, 0, 0, fmt.Errorf("read rules: %w", err)
		}
		set, err := oak.LoadRules(f)
		f.Close()
		if err != nil {
			return nil, 0, 0, fmt.Errorf("%s: %w", cfg.ruleFile, err)
		}
		ruleSet = set.Rules
	}

	for _, w := range oak.LintRules(ruleSet) {
		log.Printf("oakd: lint: %s", w)
	}

	var opts []oak.EngineOption
	if cfg.verbose {
		opts = append(opts, oak.WithLogf(log.Printf))
	}
	if cfg.shards > 0 {
		opts = append(opts, oak.WithShards(cfg.shards))
	}
	if cfg.queueLen > 0 {
		opts = append(opts, oak.WithIngestPipeline(oak.IngestConfig{
			Workers:  cfg.workers,
			QueueLen: cfg.queueLen,
		}))
	}
	if cfg.shedWait >= 0 {
		opts = append(opts, oak.WithLoadShedding(oak.ShedPolicy{
			MaxWait:    cfg.shedWait,
			RetryAfter: cfg.shedRetry,
		}))
	}
	if cfg.rewriteCache > 0 {
		opts = append(opts, oak.WithRewriteCache(cfg.rewriteCache))
	}
	if cfg.profileCache > 0 || cfg.profileCacheBytes > 0 {
		if cfg.spillDir == "" {
			return nil, 0, 0, fmt.Errorf("-profile-cache/-profile-cache-bytes need -spill-dir")
		}
		opts = append(opts, oak.WithProfileResidency(oak.ResidencyConfig{
			Dir:         cfg.spillDir,
			MaxProfiles: cfg.profileCache,
			MaxBytes:    cfg.profileCacheBytes,
		}))
	}
	if cfg.guardTrip > 0 {
		opts = append(opts, oak.WithGuard(oak.GuardConfig{
			TripThreshold:    cfg.guardTrip,
			HalfOpenCanaries: cfg.guardCanaries,
		}))
	}
	if cfg.synthWindow > 0 {
		opts = append(opts, oak.WithSynthesis(oak.SynthesisConfig{
			Window:             cfg.synthWindow,
			DegradeFactor:      cfg.synthDegrade,
			Quantile:           cfg.synthQuantile,
			MinSamples:         cfg.synthMinSamples,
			MinBaselineSamples: cfg.synthMinBaseline,
			MaxProviders:       cfg.synthMaxProviders,
		}))
	}
	engine, err := oak.NewEngine(ruleSet, opts...)
	if err != nil {
		return nil, 0, 0, err
	}
	var srvOpts []oak.ServerOption
	if cfg.rewriteBudget != 0 {
		srvOpts = append(srvOpts, oak.WithRewriteBudget(cfg.rewriteBudget))
	}
	if cfg.maxBodyBytes > 0 {
		srvOpts = append(srvOpts, oak.WithMaxBodyBytes(cfg.maxBodyBytes))
	}
	server := oak.NewServer(engine, srvOpts...)
	pages, err := server.LoadPages(os.DirFS(cfg.root))
	if err != nil {
		return nil, 0, 0, err
	}
	if pages == 0 {
		return nil, 0, 0, fmt.Errorf("no *.html pages under %s", cfg.root)
	}
	return server, pages, len(ruleSet), nil
}
