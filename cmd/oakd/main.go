// Command oakd runs an Oak-fronted origin web server over a directory of
// HTML pages and an operator rule file.
//
// Usage:
//
//	oakd -root ./site -rules ./rules.oak [-addr :8080] [-v]
//
// Every *.html file under -root is served at its relative path (index.html
// also at the directory path). Clients receive identifying cookies, pages
// are rewritten per user according to activated rules, and performance
// reports are accepted at POST /oak/report. The rule file uses the DSL of
// internal/rules.ParseDSL (heredoc blocks; see the repository README), or
// JSON when it ends in .json.
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"oak"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "oakd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs2 := flag.NewFlagSet("oakd", flag.ContinueOnError)
	var (
		root      = fs2.String("root", ".", "directory of HTML pages to serve")
		ruleFile  = fs2.String("rules", "", "rule file (DSL, or JSON if *.json)")
		addr      = fs2.String("addr", ":8080", "listen address")
		verbose   = fs2.Bool("v", false, "log engine decisions")
		stateFile = fs2.String("state", "", "persist per-user state to this file (loaded at boot, saved periodically and on shutdown)")
		saveEvery = fs2.Duration("save-interval", 5*time.Minute, "how often to persist state (with -state)")
	)
	if err := fs2.Parse(args); err != nil {
		return err
	}

	server, pages, nRules, err := buildServer(*root, *ruleFile, *verbose)
	if err != nil {
		return err
	}
	if *stateFile != "" {
		if err := loadState(server.Engine(), *stateFile); err != nil {
			return err
		}
		stop := persistPeriodically(server.Engine(), *stateFile, *saveEvery)
		defer stop()
	}
	log.Printf("oakd: serving %d pages from %s with %d rules on %s", pages, *root, nRules, *addr)
	return http.ListenAndServe(*addr, server)
}

// loadState restores engine state from the file if it exists; a missing
// file is a fresh deployment, not an error.
func loadState(engine *oak.Engine, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("read state: %w", err)
	}
	if err := engine.ImportState(data); err != nil {
		return fmt.Errorf("import state: %w", err)
	}
	log.Printf("oakd: restored state for %d users from %s", engine.Users(), path)
	return nil
}

// saveState atomically persists engine state.
func saveState(engine *oak.Engine, path string) error {
	data, err := engine.ExportState()
	if err != nil {
		return fmt.Errorf("export state: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o600); err != nil {
		return fmt.Errorf("write state: %w", err)
	}
	return os.Rename(tmp, path)
}

// persistPeriodically saves the state on an interval and on SIGINT/SIGTERM;
// the returned stop function halts the loop (used by tests).
func persistPeriodically(engine *oak.Engine, path string, every time.Duration) (stop func()) {
	stopCh := make(chan struct{})
	done := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		defer close(done)
		ticker := time.NewTicker(every)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				if err := saveState(engine, path); err != nil {
					log.Printf("oakd: periodic save: %v", err)
				}
			case <-sig:
				if err := saveState(engine, path); err != nil {
					log.Printf("oakd: shutdown save: %v", err)
				}
				os.Exit(0)
			case <-stopCh:
				return
			}
		}
	}()
	return func() {
		signal.Stop(sig)
		close(stopCh)
		<-done
	}
}

// buildServer assembles the Oak server from a page directory and a rule
// file. Split from run so it is testable without binding a listener.
func buildServer(root, ruleFile string, verbose bool) (*oak.Server, int, int, error) {
	var ruleSet []*oak.Rule
	if ruleFile != "" {
		data, err := os.ReadFile(ruleFile)
		if err != nil {
			return nil, 0, 0, fmt.Errorf("read rules: %w", err)
		}
		if strings.HasSuffix(ruleFile, ".json") {
			ruleSet, err = oak.ParseRulesJSON(data)
		} else {
			ruleSet, err = oak.ParseRules(string(data))
		}
		if err != nil {
			return nil, 0, 0, err
		}
	}

	for _, w := range oak.LintRules(ruleSet) {
		log.Printf("oakd: lint: %s", w)
	}

	var opts []oak.EngineOption
	if verbose {
		opts = append(opts, oak.WithLogf(log.Printf))
	}
	engine, err := oak.NewEngine(ruleSet, opts...)
	if err != nil {
		return nil, 0, 0, err
	}
	server := oak.NewServer(engine)
	pages, err := loadPages(root, server)
	if err != nil {
		return nil, 0, 0, err
	}
	return server, pages, len(ruleSet), nil
}

// loadPages registers every *.html under root with the server and returns
// how many were loaded.
func loadPages(root string, server *oak.Server) (int, error) {
	count := 0
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".html") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		urlPath := "/" + filepath.ToSlash(rel)
		server.SetPage(urlPath, string(data))
		if strings.HasSuffix(urlPath, "/index.html") {
			server.SetPage(strings.TrimSuffix(urlPath, "index.html"), string(data))
		}
		count++
		return nil
	})
	if err != nil {
		return 0, fmt.Errorf("load pages: %w", err)
	}
	if count == 0 {
		return 0, fmt.Errorf("no *.html pages under %s", root)
	}
	return count, nil
}
