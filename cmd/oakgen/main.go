// Command oakgen generates a synthetic site catalog (the Alexa-Top-500
// stand-in used by the experiments) and writes it as JSON for inspection,
// or emits the generated rule set for one site.
//
// Usage:
//
//	oakgen -sites 20 -seed 7 > catalog.json
//	oakgen -site 3 -rules > site3-rules.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"oak"
	"oak/internal/webgen"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "oakgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("oakgen", flag.ContinueOnError)
	var (
		seed     = fs.Int64("seed", 1, "generation seed")
		sites    = fs.Int("sites", 10, "number of sites to generate")
		siteIdx  = fs.Int("site", -1, "emit only this site index")
		genRules = fs.Bool("rules", false, "emit the site's generated Type 2 rule set instead of the site")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	n := *sites
	if *siteIdx >= 0 && *siteIdx >= n {
		n = *siteIdx + 1
	}
	g := webgen.NewGenerator(webgen.Config{Seed: *seed, NumSites: n})
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")

	if *siteIdx >= 0 {
		site := g.Site(*siteIdx)
		if *genRules {
			rs := webgen.BuildRules(site, []string{"na", "eu", "as"})
			data, err := oak.MarshalRules(rs)
			if err != nil {
				return err
			}
			_, err = os.Stdout.Write(append(data, '\n'))
			return err
		}
		return enc.Encode(site)
	}
	if *genRules {
		return fmt.Errorf("-rules requires -site")
	}
	return enc.Encode(g.Catalog())
}
