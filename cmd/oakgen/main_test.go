package main

import (
	"testing"
)

func TestRunCatalog(t *testing.T) {
	if err := run([]string{"-sites", "2"}); err != nil {
		t.Errorf("run(-sites 2) = %v", err)
	}
}

func TestRunSingleSite(t *testing.T) {
	if err := run([]string{"-site", "1", "-sites", "3"}); err != nil {
		t.Errorf("run(-site 1) = %v", err)
	}
}

func TestRunSiteRules(t *testing.T) {
	if err := run([]string{"-site", "0", "-rules"}); err != nil {
		t.Errorf("run(-site 0 -rules) = %v", err)
	}
}

func TestRunRulesRequiresSite(t *testing.T) {
	if err := run([]string{"-rules"}); err == nil {
		t.Error("run(-rules) without -site: want error")
	}
}

func TestRunSiteBeyondCatalog(t *testing.T) {
	// -site larger than -sites grows the catalog rather than failing.
	if err := run([]string{"-site", "5", "-sites", "2"}); err != nil {
		t.Errorf("run(-site 5 -sites 2) = %v", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Error("run(-nope): want error")
	}
}
