// Command oakbench regenerates the paper's tables and figures, and runs the
// scenario matrix.
//
// Usage:
//
//	oakbench -list
//	oakbench [-seed N] [-sites N] [-clients N] [-quick] <experiment-id>...
//	oakbench all
//	oakbench scenario [-list] [-out FILE] [-seed N] [-nogate] <name|all|path.json>...
//
// Each experiment prints its series as "x<TAB>y" pairs plus a summary table
// comparing the measured shape against the paper's reported numbers. The
// scenario subcommand runs declarative end-to-end workloads (checked-in
// specs under scenarios/, or spec files by path) and gates on the
// decision-quality floors in each spec's expect block; see docs/SCENARIOS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"oak/internal/experiment"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "oakbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) > 0 && args[0] == "scenario" {
		return runScenario(args[1:])
	}
	fs := flag.NewFlagSet("oakbench", flag.ContinueOnError)
	var (
		list    = fs.Bool("list", false, "list experiment ids and exit")
		seed    = fs.Int64("seed", 1, "random seed (runs are reproducible per seed)")
		sites   = fs.Int("sites", 0, "catalog size (0 = paper scale, 500)")
		clients = fs.Int("clients", 0, "vantage points (0 = paper scale, 25)")
		quick   = fs.Bool("quick", false, "reduced scale for a fast smoke run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Println(strings.Join(experiment.IDs(), "\n"))
		return nil
	}
	ids := fs.Args()
	if len(ids) == 0 {
		return fmt.Errorf("no experiment given; try -list or 'all'")
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = experiment.IDs()
	}
	cfg := experiment.Config{Seed: *seed, Sites: *sites, Clients: *clients, Quick: *quick}
	for _, id := range ids {
		res, err := experiment.Run(id, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Println(res.Render())
	}
	return nil
}
