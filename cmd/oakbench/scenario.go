package main

// The `oakbench scenario` subcommand: run named (embedded) scenarios or spec
// files from disk, print the decision-quality matrix, and optionally write
// the JSON document consumed by make bench-scenarios and verify.sh.

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"oak/internal/experiment"
)

// scenarioUsage is printed on flag errors and -h for the subcommand.
const scenarioUsage = `usage: oakbench scenario [-list] [-out FILE] [-seed N] [-nogate] <name|all|path.json>...

Runs scenario specs: embedded starter scenarios by name ("all" = every
embedded spec), or any *.json spec file by path. Prints a decision-quality
table; -out additionally writes the full JSON matrix. Exits non-zero when a
scenario misses a floor in its expect block unless -nogate is set.
`

// runScenario handles `oakbench scenario ...` (args exclude "scenario").
func runScenario(args []string) error {
	fs := flag.NewFlagSet("oakbench scenario", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprint(fs.Output(), scenarioUsage)
		fs.PrintDefaults()
	}
	var (
		list   = fs.Bool("list", false, "list embedded scenario names and exit")
		out    = fs.String("out", "", "write the JSON matrix to this file")
		seed   = fs.Int64("seed", 0, "override every spec's seed (0 = use spec seeds)")
		nogate = fs.Bool("nogate", false, "report gate failures but exit zero")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Println(strings.Join(experiment.ScenarioNames(), "\n"))
		return nil
	}
	names := fs.Args()
	if len(names) == 0 {
		return fmt.Errorf("no scenario given; try 'scenario -list' or 'scenario all'")
	}
	if len(names) == 1 && names[0] == "all" {
		names = experiment.ScenarioNames()
	}

	matrix := &experiment.ScenarioMatrix{SpecVersion: experiment.ScenarioSpecVersion}
	for _, name := range names {
		spec, err := loadSpecArg(name)
		if err != nil {
			return err
		}
		if *seed != 0 {
			spec.Seed = *seed
		}
		res, err := experiment.RunScenario(spec)
		if err != nil {
			return fmt.Errorf("scenario %s: %w", spec.Name, err)
		}
		matrix.Results = append(matrix.Results, res)
	}

	fmt.Println(matrix.Render())
	if *out != "" {
		data, err := matrix.MarshalIndentStable()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if !matrix.Pass() && !*nogate {
		return fmt.Errorf("scenario gate failed (see failures above)")
	}
	return nil
}

// loadSpecArg resolves one positional argument: a path to a spec file (when
// it looks like one) or an embedded scenario name.
func loadSpecArg(arg string) (*experiment.ScenarioSpec, error) {
	if strings.HasSuffix(arg, ".json") || strings.ContainsAny(arg, "/\\") {
		return experiment.LoadScenarioFile(arg)
	}
	return experiment.LoadScenario(arg)
}
