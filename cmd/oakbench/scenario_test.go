package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestScenarioList(t *testing.T) {
	if err := run([]string{"scenario", "-list"}); err != nil {
		t.Errorf("scenario -list = %v", err)
	}
}

func TestScenarioNoArgs(t *testing.T) {
	if err := run([]string{"scenario"}); err == nil {
		t.Error("scenario without names: want error")
	}
}

func TestScenarioUnknownName(t *testing.T) {
	if err := run([]string{"scenario", "no-such"}); err == nil {
		t.Error("scenario no-such: want error")
	}
}

func TestScenarioRunNamedWithOut(t *testing.T) {
	out := filepath.Join(t.TempDir(), "matrix.json")
	if err := run([]string{"scenario", "-out", out, "slowloris"}); err != nil {
		t.Fatalf("scenario slowloris = %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("read matrix: %v", err)
	}
	var doc struct {
		SpecVersion int `json:"specVersion"`
		Results     []struct {
			Name string `json:"name"`
			Pass bool   `json:"pass"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("matrix not JSON: %v", err)
	}
	if len(doc.Results) != 1 || doc.Results[0].Name != "slowloris" || !doc.Results[0].Pass {
		t.Fatalf("unexpected matrix: %+v", doc)
	}
}

func TestScenarioSpecFileFromDisk(t *testing.T) {
	spec := `{
  "version": 1,
  "name": "diskspec",
  "seed": 3,
  "loads": 3,
  "world": {"sites": 1, "clients": 2},
  "faults": []
}`
	path := filepath.Join(t.TempDir(), "diskspec.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"scenario", path}); err != nil {
		t.Errorf("scenario %s = %v", path, err)
	}
}

func TestScenarioGateFailureExitsNonZero(t *testing.T) {
	spec := `{
  "version": 1,
  "name": "failing",
  "seed": 3,
  "loads": 3,
  "world": {"sites": 1, "clients": 2},
  "faults": [],
  "expect": {"minBreakerTrips": 1000}
}`
	path := filepath.Join(t.TempDir(), "failing.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"scenario", path}); err == nil {
		t.Error("gate miss: want error")
	}
	// -nogate reports but exits clean.
	if err := run([]string{"scenario", "-nogate", path}); err != nil {
		t.Errorf("-nogate should swallow the gate miss, got %v", err)
	}
}
