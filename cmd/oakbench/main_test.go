package main

import (
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Errorf("run(-list) = %v", err)
	}
}

func TestRunNoArgs(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("run() without experiments: want error")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-quick", "fig99"}); err == nil {
		t.Error("run(fig99): want error")
	}
}

func TestRunQuickExperiment(t *testing.T) {
	if err := run([]string{"-quick", "-sites", "15", "-clients", "5", "fig1"}); err != nil {
		t.Errorf("run(fig1) = %v", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Error("run(-nope): want error")
	}
}
