package oak_test

// One benchmark per table and figure of the paper, plus one per ablation of
// DESIGN.md. Each benchmark regenerates its experiment end-to-end (catalog
// generation, simulated loads, detection, rule activation, analysis) and
// logs the headline paper-vs-measured comparison once.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Benchmarks run at reduced ("quick") scale so a full sweep stays in CPU
// minutes; cmd/oakbench runs any experiment at paper scale.

import (
	"fmt"
	"sync"
	"testing"

	"oak/internal/experiment"
)

// benchCfg is the shared benchmark configuration. A fixed seed keeps every
// run reproducible.
var benchCfg = experiment.Config{Seed: 1, Quick: true}

// logOnce logs each experiment's summary a single time per process so
// repeated b.N iterations don't flood the output.
var logOnce sync.Map

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiment.Run(id, benchCfg)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if _, loaded := logOnce.LoadOrStore(id, true); !loaded {
			for _, tab := range res.Tables {
				b.Logf("\n%s", tab.Render())
			}
			for _, note := range res.Notes {
				b.Logf("note: %s", note)
			}
		}
	}
}

// --- Section 2: the measurement study ---

// BenchmarkFig1ExternalFraction regenerates Figure 1: the CDF of the
// fraction of page objects served from non-origin hosts (paper median 75%).
func BenchmarkFig1ExternalFraction(b *testing.B) { benchExperiment(b, "fig1") }

// BenchmarkFig2OutlierCounts regenerates Figure 2: outliers per site from
// 25 vantage points (paper: >60% of sites with at least one, ~20% with 4+).
func BenchmarkFig2OutlierCounts(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkTable1TopOutliers regenerates Table 1: the most frequently seen
// outlier domains (paper: ads/analytics/social dominate).
func BenchmarkTable1TopOutliers(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkFig3OutlierChurn regenerates Figure 3: the fraction of outliers
// that vanish after 1/2/5 days (paper: ~52% churn, then stable).
func BenchmarkFig3OutlierChurn(b *testing.B) { benchExperiment(b, "fig3") }

// --- Section 4: rule matching coverage ---

// BenchmarkFig8MatchRates regenerates Figure 8: the fraction of contacted
// servers a whole-index rule matches per tier (paper medians 42/60/81%).
func BenchmarkFig8MatchRates(b *testing.B) { benchExperiment(b, "fig8") }

// --- Section 5: the evaluation ---

// BenchmarkFig9Sensitivity regenerates Figure 9: PLT ratio vs injected
// delay for NA/EU/AS clients (paper thresholds ~0.75s / >2s / ~5s).
func BenchmarkFig9Sensitivity(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10MinMedian regenerates Figure 10: min/median set-download
// ratios, Oak vs default (paper medians ~0.7 vs ~0.3).
func BenchmarkFig10MinMedian(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFig11Diurnal regenerates Figure 11: the average PLT ratio over a
// multi-day run (paper: >10x daytime gains, ~1x at night).
func BenchmarkFig11Diurnal(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkTable2SiteSelection regenerates Table 2: the H1/H2 site sets.
func BenchmarkTable2SiteSelection(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkFig12CorrectChoices regenerates Figure 12: the fraction of
// correct rule choices per condition (paper: ~80% H1, ~74% H2 fully
// correct).
func BenchmarkFig12CorrectChoices(b *testing.B) { benchExperiment(b, "fig12") }

// BenchmarkFig13ObjectRatios regenerates Figure 13: default/Oak object-time
// ratios for protected objects (paper improvement: 57/66/80/77%).
func BenchmarkFig13ObjectRatios(b *testing.B) { benchExperiment(b, "fig13") }

// BenchmarkFig14ActivationSpread regenerates Figure 14: the CDF of rules by
// the fraction of users activating them (paper: 80% of rules <=18%).
func BenchmarkFig14ActivationSpread(b *testing.B) { benchExperiment(b, "fig14") }

// BenchmarkTable3IndividualVsCommon regenerates Table 3: example individual
// vs common problem providers.
func BenchmarkTable3IndividualVsCommon(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkFig15ReportSizes regenerates Figure 15: the report-size CDF
// (paper: median <10 KB, max ~345 KB).
func BenchmarkFig15ReportSizes(b *testing.B) { benchExperiment(b, "fig15") }

// --- Ablations (DESIGN.md) ---

// BenchmarkAblationMADMultiplier sweeps the violator criterion's k.
func BenchmarkAblationMADMultiplier(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.AblationMADMultiplier(1, 8)
		if err != nil {
			b.Fatal(err)
		}
		if _, loaded := logOnce.LoadOrStore("abl-mad", true); !loaded {
			for _, r := range rows {
				b.Logf("k=%.1f detection=%.2f false-flags/load=%.2f", r.K, r.DetectionRate, r.FalseFlagsPerLoad)
			}
		}
	}
}

// BenchmarkAblationAbsoluteThreshold contrasts relative (MAD) and absolute
// thresholds on a uniformly slow client.
func BenchmarkAblationAbsoluteThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.AblationAbsoluteThreshold(1)
		if err != nil {
			b.Fatal(err)
		}
		if _, loaded := logOnce.LoadOrStore("abl-abs", true); !loaded {
			b.Logf("narrow-link flags: relative=%d absolute=%d", res.RelativeFlags, res.AbsoluteFlags)
		}
	}
}

// BenchmarkAblationSizeSplit sweeps the 50 KB small/large split point.
func BenchmarkAblationSizeSplit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.AblationSizeSplit(1)
		if err != nil {
			b.Fatal(err)
		}
		if _, loaded := logOnce.LoadOrStore("abl-split", true); !loaded {
			for _, r := range rows {
				b.Logf("split=%dKB small-signal servers=%d large-signal servers=%d",
					r.ThresholdKB, r.SmallServers, r.LargeServers)
			}
		}
	}
}

// BenchmarkAblationMatchDepth sweeps the external-JS expansion depth.
func BenchmarkAblationMatchDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.AblationMatchDepth(1, 15)
		if err != nil {
			b.Fatal(err)
		}
		if _, loaded := logOnce.LoadOrStore("abl-depth", true); !loaded {
			for _, r := range rows {
				b.Logf("depth=%d median match rate=%.2f", r.Depth, r.MedianMatchRate)
			}
		}
	}
}

// BenchmarkAblationHistory compares the distance-minimising rule history
// against never-revert and no-Oak baselines.
func BenchmarkAblationHistory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.AblationHistory(1)
		if err != nil {
			b.Fatal(err)
		}
		if _, loaded := logOnce.LoadOrStore("abl-history", true); !loaded {
			b.Logf("mean PLT: oak=%.0fms never-revert=%.0fms no-rules=%.0fms",
				res.MeanPLTOak, res.MeanPLTNeverRevert, res.MeanPLTNoRules)
		}
	}
}

// BenchmarkAblationMinViolations sweeps the activation threshold under a
// transient burst plus a persistent degradation.
func BenchmarkAblationMinViolations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.AblationMinViolations(1)
		if err != nil {
			b.Fatal(err)
		}
		if _, loaded := logOnce.LoadOrStore("abl-minviol", true); !loaded {
			for _, r := range rows {
				b.Logf("minViolations=%d false-activations=%d true-activation-load=%d",
					r.MinViolations, r.FalseActivations, r.TrueActivationDelay)
			}
		}
	}
}

// BenchmarkAblationResourceTiming quantifies the paper's Section 6
// argument: a Resource-Timing-API client misses most degraded providers at
// realistic Timing-Allow-Origin opt-in rates.
func BenchmarkAblationResourceTiming(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.AblationResourceTimingAPI(1, 30)
		if err != nil {
			b.Fatal(err)
		}
		if _, loaded := logOnce.LoadOrStore("abl-rt", true); !loaded {
			for _, r := range rows {
				b.Logf("opt-in=%.1f full-coverage=%.2f api-coverage=%.2f",
					r.OptInFraction, r.FullCoverage, r.APICoverage)
			}
		}
	}
}

// BenchmarkEngineHandleReport measures the core ingestion path in
// isolation: one report of 25 objects against a 10-rule engine.
func BenchmarkEngineHandleReport(b *testing.B) {
	engine, rep := newEngineBenchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep.UserID = fmt.Sprintf("user-%d", i%64)
		if _, err := engine.HandleReport(rep); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineModifyPage measures the page-rewrite path for a user with
// active rules.
func BenchmarkEngineModifyPage(b *testing.B) {
	engine, rep := newEngineBenchFixture(b)
	rep.UserID = "bench-user"
	if _, err := engine.HandleReport(rep); err != nil {
		b.Fatal(err)
	}
	page := benchPage()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.ModifyPage("bench-user", "/index.html", page)
	}
}
