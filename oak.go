// Package oak implements Oak, a system for user-targeted web performance
// (Flores, Wenzel, Kuzmanovic — "Oak: User-Targeted Web Performance").
//
// Oak sits beside a web server. Oak-enabled clients measure every object
// they download while loading a page and report those timings back. For
// each user individually, Oak detects external servers that under-perform
// relative to the other servers that same user contacted (a median-absolute-
// deviation criterion), and activates operator-written rules that rewrite
// the user's future pages to fetch the affected objects from an alternative
// provider — or to drop them.
//
// The essential loop:
//
//	rules, _ := oak.ParseRules(ruleText)
//	engine, _ := oak.NewEngine(rules)
//	server := oak.NewServer(engine)     // an http.Handler
//	server.SetPage("/index.html", html)
//	// clients GET pages and POST reports to /oak/report;
//	// each user's pages adapt to that user's own reported performance.
//
// Page registry lifecycle: a Server's pages are live state, safe to mutate
// while serving. SetPage registers or replaces the markup at a path,
// RemovePage retires it (subsequent requests 404; per-user rule state is
// untouched), Pages lists what is registered, and Server.LoadPages — or the
// WithPagesFrom server option, for embedded bundles — registers every
// *.html file in an fs.FS. Rules rewrite pages at delivery time, so page
// updates take effect on the next request without engine involvement.
//
// Scaling: per-user state is sharded (WithShards) so reports for different
// users ingest in parallel, and WithIngestPipeline adds a bounded queue and
// worker pool (backpressure instead of unbounded memory). POST /oak/report
// also accepts an NDJSON batch body (Content-Type application/x-ndjson, one
// report per line) and the compact OAKRPT1 binary wire format
// (BinaryContentType for one report, BinaryBatchContentType for a batch of
// length-prefixed frames — roughly half the wire bytes of JSON; a Client
// opts in with Wire = WireBinary). Ingest itself is a pooled fast path:
// reports are decoded with a zero-copy streaming decoder into sync.Pool-
// recycled structs, so the steady-state JSON path holds at a handful of
// allocations per report. Engines with a pipeline should be Closed on
// shutdown.
//
// Package layout: the facade re-exports the pieces a deployment needs —
// the engine (internal/core), the rule language (internal/rules), the
// report format (internal/report), the HTTP server (internal/origin) and
// an instrumented client (internal/client). The internal packages also
// contain the full simulation substrate (internal/netsim, internal/webgen)
// and the paper-reproduction harness (internal/experiment) driven by
// cmd/oakbench and the repository benchmarks.
package oak

import (
	"bytes"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"time"
	"unicode"

	"oak/internal/client"
	"oak/internal/core"
	"oak/internal/gateway"
	"oak/internal/guard"
	"oak/internal/obs"
	"oak/internal/origin"
	"oak/internal/report"
	"oak/internal/rules"
)

// Rule is one operator-specified page rewrite rule (Section 4.1 of the
// paper): a block of default text, what may replace it, how long an
// activation lives, and which pages it applies to.
type Rule = rules.Rule

// SubRule is a dependent replacement applied only when its parent rule is
// active.
type SubRule = rules.SubRule

// RuleType selects remove / replace-identical / replace-alternative
// semantics.
type RuleType = rules.Type

// Rule types.
const (
	// TypeRemove removes the default text (paper Type 1).
	TypeRemove = rules.TypeRemove
	// TypeReplaceSame swaps in the identical object from an alternative
	// source (paper Type 2); clients receive cache hints for these.
	TypeReplaceSame = rules.TypeReplaceSame
	// TypeReplaceAlt swaps in a different object (paper Type 3).
	TypeReplaceAlt = rules.TypeReplaceAlt
)

// CacheHintHeader carries old=new URL pairs for Type 2 replacements so
// browsers can reuse cached copies fetched under the old URL (Section 4.3).
const CacheHintHeader = rules.CacheHintHeader

// Report is one page-load performance report from one client: the loaded
// URL, size and timing of every object, in the paper's HAR-like format.
type Report = report.Report

// Entry is one object download inside a report.
type Entry = report.Entry

// Engine is the Oak decision core: it ingests reports, maintains per-user
// profiles, detects violators and rewrites pages. Safe for concurrent use.
type Engine = core.Engine

// Policy tunes the engine: the MAD multiplier, the violations needed before
// a rule activates, alternative selection, and rule-matching depth.
type Policy = core.Policy

// EngineOption configures NewEngine.
type EngineOption = core.Option

// Violation describes one server flagged as under-performing for one user.
type Violation = core.Violation

// AnalysisResult is what handling one report decided. Engine.HandleReport
// produces one synchronously; Engine.HandleReportCtx is the context-aware
// form (cancellation abandons a report still queued in the batched-ingest
// pipeline).
type AnalysisResult = core.AnalysisResult

// IngestConfig sizes the optional batched-ingest pipeline (see
// WithIngestPipeline): worker-pool size and per-worker queue bound.
type IngestConfig = core.IngestConfig

// BatchResult summarises one batch ingest: reports submitted, processed,
// failed, and a capped sample of failure messages. Engine.HandleBatch
// returns one; the origin server serves it as the NDJSON batch response.
type BatchResult = core.BatchResult

// ErrEngineClosed is returned by report submission after Engine.Close.
// Deprecated alias for ErrShuttingDown (same value; errors.Is matches both).
var ErrEngineClosed = core.ErrEngineClosed

// Resilience errors. Handlers map ErrOverloaded and ErrShuttingDown to
// 503 + Retry-After; state errors mark snapshots the engine refused to load
// (LoadStateFile falls back to the rotating backup on them).
var (
	// ErrShuttingDown is returned by report submission after Engine.Close.
	ErrShuttingDown = core.ErrShuttingDown
	// ErrOverloaded is returned (wrapped in *OverloadError) when load
	// shedding rejects a report instead of blocking on a full queue.
	ErrOverloaded = core.ErrOverloaded
	// ErrCorruptState marks a snapshot that failed checksum, framing or
	// structural validation.
	ErrCorruptState = core.ErrCorruptState
	// ErrStateVersion marks a snapshot from an incompatible format version.
	ErrStateVersion = core.ErrStateVersion
)

// OverloadError is the concrete shed error: errors.Is(err, ErrOverloaded)
// matches it, and errors.As extracts the RetryAfter hint the origin server
// turns into a Retry-After header.
type OverloadError = core.OverloadError

// ShedPolicy tunes load shedding (see WithLoadShedding): how long a
// submission may wait on a full ingest queue before being shed, and what
// retry horizon to advertise.
type ShedPolicy = core.ShedPolicy

// DefaultRetryAfter is the advertised retry horizon when a ShedPolicy does
// not set one.
const DefaultRetryAfter = core.DefaultRetryAfter

// StateSource reports where the engine's state came from: StateFresh (no
// file), StateSnapshot (primary), StateBackup (primary missing or corrupt;
// recovered from the rotating .bak), or StateShipped (rehydrated over HTTP
// from a snapshot shipped by another node — see Engine.ImportShippedState
// and the cluster gateway).
type StateSource = core.StateSource

// State sources.
const (
	StateFresh    = core.StateFresh
	StateSnapshot = core.StateSnapshot
	StateBackup   = core.StateBackup
	StateShipped  = core.StateShipped
)

// HashRange is one half-open arc [Lo, Hi) of the 32-bit user-hash ring —
// the unit of per-user-range state export (Engine.ExportStateRange,
// Engine.ImportStateRange) and of cluster partitioning. Lo == Hi means the
// whole ring; Lo > Hi wraps around zero.
type HashRange = core.HashRange

// EqualRanges partitions the user-hash ring into n equal arcs — the
// partition map the cluster gateway assigns to n backends.
func EqualRanges(n int) []HashRange { return core.EqualRanges(n) }

// RangeFor returns the index of the arc in ranges owning userID's hash,
// or -1 when no arc contains it.
func RangeFor(userID string, ranges []HashRange) int { return core.RangeFor(userID, ranges) }

// UserHash is the engine's user-to-ring hash (FNV-1a over the user ID) —
// the same function that stripes users across shards, exported so external
// routing layers partition exactly the way the engine does.
func UserHash(userID string) uint32 { return core.UserHash(userID) }

// RetryPolicy bounds the client's retries (attempts, exponential backoff
// with jitter) for object fetches, page fetches and report submission.
type RetryPolicy = client.RetryPolicy

// StatusClientClosedRequest is the 499 status (nginx convention) the origin
// responds with when the client abandoned the request mid-ingest.
const StatusClientClosedRequest = origin.StatusClientClosedRequest

// EngineMetrics are the engine's aggregate counters.
type EngineMetrics = core.Metrics

// TraceEvent is one recorded engine decision (report ingested, violator
// flagged, rule activated/advanced/kept/deactivated/expired, page
// modified). Engine.TraceRecent(n) returns the latest; the origin server
// serves them at TracePath.
type TraceEvent = obs.Event

// LatencySnapshot is a point-in-time copy of one hot-path latency
// histogram; Quantile/Mean/Summary extract percentiles.
type LatencySnapshot = obs.Snapshot

// EngineLatencies pairs the engine's ingest and rewrite histograms,
// returned by Engine.Latencies and served at MetricsPath.
type EngineLatencies = core.LatencySnapshots

// AuditReport is the operator-facing summary of what Oak has learned —
// the paper's "offline auditing tool". Engine.Audit() builds one; the
// origin server also serves it at AuditPath.
type AuditReport = core.Audit

// Server is the Oak-fronted origin: an http.Handler that issues identifying
// cookies, rewrites outgoing pages per user, and ingests POSTed reports on
// ReportPath.
type Server = origin.Server

// ContentServer is a configurable external content server for tests,
// examples and local experiments (objects, scripts, adjustable delay).
type ContentServer = origin.ContentServer

// Client is an Oak-enabled HTTP client: it loads pages, measures every
// object download, and reports the timings back — the role the paper's
// modified browser plays.
type Client = client.HTTPClient

// LoadResult is a completed client page load: the report plus the effective
// page load time.
type LoadResult = client.LoadResult

// HostResolver maps hostnames in page markup to reachable addresses.
type HostResolver = client.HostResolver

// WireFormat selects how a Client encodes report submissions: WireJSON
// (the default) or WireBinary, the compact OAKRPT1 framing, which cuts
// report wire bytes roughly in half. Set Client.Wire to opt in; servers
// negotiate by Content-Type, so a pre-binary origin answers 400 rather
// than silently mis-parsing.
type WireFormat = client.WireFormat

const (
	// WireJSON submits reports as JSON (the default, understood by
	// every Oak origin).
	WireJSON = client.WireJSON
	// WireBinary submits reports as OAKRPT1 binary frames
	// (Content-Type BinaryContentType).
	WireBinary = client.WireBinary
)

// Wire-level constants of the origin server. The API is versioned: every
// endpoint answers under /oak/v1/... (the *V1 constants) and new
// integrations should use those paths. The unversioned paths remain as
// aliases serving byte-identical responses, but are deprecated — see the
// "API versioning" note in the README.
const (
	// CookieName is the identifying cookie Oak issues to clients.
	CookieName = origin.CookieName
	// V1Prefix is the versioned API mount point ("/oak/v1").
	V1Prefix = origin.V1Prefix
	// ReportPathV1 is the HTTP POST endpoint for performance reports: one
	// JSON report per request, or — with Content-Type BatchContentType —
	// an NDJSON batch of one report per line.
	ReportPathV1 = origin.ReportPathV1
	// ReportPath is the deprecated unversioned alias of ReportPathV1.
	ReportPath = origin.ReportPath
	// BatchContentType marks a report body as an NDJSON batch.
	BatchContentType = origin.BatchContentType
	// BinaryContentType marks a report body as a single OAKRPT1 binary
	// frame (the compact wire format Client.Wire = WireBinary emits).
	BinaryContentType = report.ContentTypeBinary
	// BinaryBatchContentType marks a report body as concatenated
	// length-prefixed OAKRPT1 frames.
	BinaryBatchContentType = report.ContentTypeBinaryBatch
	// AuditPathV1 serves the operator audit summary. Restrict access in
	// deployments: it is operator-facing.
	AuditPathV1 = origin.AuditPathV1
	// AuditPath is the deprecated unversioned alias of AuditPathV1.
	AuditPath = origin.AuditPath
	// MetricsPathV1 serves engine counters and ingest/rewrite latency
	// histograms as JSON. Operator-facing.
	MetricsPathV1 = origin.MetricsPathV1
	// MetricsPath is the deprecated unversioned alias of MetricsPathV1.
	MetricsPath = origin.MetricsPath
	// HealthzPathV1 serves a liveness summary (uptime, rule/user counts).
	HealthzPathV1 = origin.HealthzPathV1
	// HealthzPath is the deprecated unversioned alias of HealthzPathV1.
	HealthzPath = origin.HealthzPath
	// TracePathV1 serves recent decision-trace events as JSON (?n=100).
	// Operator-facing.
	TracePathV1 = origin.TracePathV1
	// TracePath is the deprecated unversioned alias of TracePathV1.
	TracePath = origin.TracePath
	// PopulationPathV1 serves the population-detection state (degraded
	// providers, baselines, synthesis counters); 404 without WithSynthesis.
	PopulationPathV1 = origin.PopulationPathV1
	// PopulationPath is the unversioned alias of PopulationPathV1.
	PopulationPath = origin.PopulationPath
)

// NewEngine builds an Oak engine over a compiled rule set.
func NewEngine(ruleSet []*Rule, opts ...EngineOption) (*Engine, error) {
	return core.NewEngine(ruleSet, opts...)
}

// WithPolicy sets the engine policy (zero fields take paper defaults:
// MAD multiplier 2, one violation, linear alternative progression, full
// match pipeline with one script layer).
func WithPolicy(p Policy) EngineOption { return core.WithPolicy(p) }

// WithScriptFetcher enables the external-JavaScript matching tier
// (Section 4.2.2) using the given fetcher.
func WithScriptFetcher(f core.ScriptFetcher) EngineOption { return core.WithScriptFetcher(f) }

// WithClock overrides the engine's time source.
func WithClock(now func() time.Time) EngineOption { return core.WithClock(now) }

// WithLogf directs engine decision logging to a printf-style sink. The
// structured source of these lines is the decision trace (TraceRecent).
func WithLogf(logf func(format string, args ...any)) EngineOption { return core.WithLogf(logf) }

// WithTraceCapacity sizes the engine's decision-trace ring buffer (the
// window TracePath serves); default 1024 events.
func WithTraceCapacity(n int) EngineOption { return core.WithTraceCapacity(n) }

// WithShards sets how many lock-striped shards partition per-user state
// (rounded up to a power of two; default four per logical CPU). Reports for
// users on different shards ingest fully in parallel.
func WithShards(n int) EngineOption { return core.WithShards(n) }

// WithIngestPipeline enables batched ingest: HandleReport/HandleReportCtx
// enqueue into a bounded queue drained by a worker pool shard by shard,
// with backpressure when full. Engines built with it must be Closed.
func WithIngestPipeline(cfg IngestConfig) EngineOption { return core.WithIngestPipeline(cfg) }

// WithLoadShedding switches a pipelined engine from blocking backpressure
// to deadline-aware shedding: a submission that cannot enqueue within
// MaxWait fails fast with an *OverloadError instead of blocking, keeping
// page serving responsive while ingest is saturated.
func WithLoadShedding(p ShedPolicy) EngineOption { return core.WithLoadShedding(p) }

// WithRewriteCache bounds the engine's rewrite cache to n entries (whole
// rewritten pages keyed by page content + activation fingerprint); repeat
// requests from users with stable activations are then served from memory
// without re-running the rules. n <= 0 disables the cache; serving behavior
// is identical, every page just recomputes its rewrite. See the README
// "Performance" section and docs/OPERATIONS.md for sizing.
func WithRewriteCache(n int) EngineOption { return core.WithRewriteCache(n) }

// RewriteCacheStats is a point-in-time view of the engine rewrite cache's
// counters (Engine.RewriteCacheStats; also surfaced in /oak/metrics).
type RewriteCacheStats = core.RewriteCacheStats

// ResidencyConfig enables and tunes the profile spill tier (see
// WithProfileResidency): the segment directory, the resident caps
// (MaxProfiles and/or MaxBytes — either alone works, both combine), the
// segment rotation size and the dead-record ratio that triggers compaction.
type ResidencyConfig = core.ResidencyConfig

// WithProfileResidency bounds how much per-user state stays resident in
// memory. Profiles beyond the cap are evicted coldest-first into compact
// binary append-log segments (written and fsynced before the in-memory copy
// is dropped, so an acknowledged report is never lost to a crash) and
// rehydrated transparently on the user's next report or page request.
// Spilled profiles participate fully in ExportState/ExportSnapshot — a
// snapshot is byte-identical whichever side of the cap each profile is on.
// Disk faults on the spill path degrade the engine to memory-only mode:
// evictions stop, serving continues, and healthz reports "degraded". See
// docs/OPERATIONS.md, "Memory & the spill tier".
func WithProfileResidency(cfg ResidencyConfig) EngineOption { return core.WithProfileResidency(cfg) }

// SpillStatus is the spill tier's externally visible state (residency
// counts, segment footprint, quarantined segments, counters), returned by
// Engine.SpillStatus and served under "spill" in /oak/v1/metrics.
type SpillStatus = core.SpillStatus

// GuardConfig enables and tunes the engine's population-level guardrails:
// per-provider circuit breakers over alternate providers (closed → open →
// half-open, fed by outcomes pooled across all users and by the optional
// active prober) and automatic quarantine of rules implicated in repeated
// rewrite panics. Zero fields take the defaults (trip after 5 consecutive
// bad outcomes, 30s cool-down, 3 half-open canaries, close after 2 good
// canary outcomes, rule quarantine after 3 panics).
type GuardConfig = core.GuardConfig

// WithGuard enables the guardrails. An open breaker blocks new activations
// onto its provider and bulk-deactivates existing ones; a half-open breaker
// admits a bounded number of canary activations and closes only on good
// observed outcomes. Guard state persists in snapshots (pre-guard snapshots
// load with empty guard state); breaker states surface in /oak/metrics
// ("guard") and open breakers in /oak/healthz ("open_breakers").
func WithGuard(cfg GuardConfig) EngineOption { return core.WithGuard(cfg) }

// GuardStatus is the guard's externally visible state (breakers, quarantined
// providers and rules, canary counts), returned by Engine.GuardStatus and
// served under "guard" in /oak/metrics.
type GuardStatus = core.GuardStatus

// BreakerStatus is one provider breaker's state inside a GuardStatus.
type BreakerStatus = guard.ProviderStatus

// Prober actively probes alternate providers and feeds the outcomes into the
// engine's breakers, so a dead provider is caught (and a recovered one
// re-admitted) even while no user is loading from it. Typical wiring:
//
//	p := &oak.Prober{
//		Targets:  engine.AlternateProviders,
//		Report:   engine.ObserveProviderOutcome,
//		Interval: 30 * time.Second,
//	}
//	p.Start()
//	defer p.Stop()
type Prober = guard.Prober

// SynthesisConfig enables and tunes population-level detection and
// automatic rule synthesis: per-provider download-time sketches fed on
// every report, a window-vs-trailing-baseline quantile comparison that
// flags globally degraded providers, and a synthesizer that activates
// matching catalog rules for affected users before they individually
// accumulate enough violations. Zero fields take defaults (2m window,
// 1.5× degrade factor on the p75, 20 samples minimum, 64 providers).
type SynthesisConfig = core.SynthesisConfig

// WithSynthesis enables population-level detection and rule synthesis.
// Synthesized activations carry provenance (trace kind "synthesize",
// synthesized flags in snapshots and the audit trail) and are admitted
// through the guard breakers like organic ones, so a bad synthetic rule
// self-rolls-back. Degraded providers surface in /oak/v1/metrics
// ("population"), /oak/v1/healthz ("degraded_providers") and the dedicated
// /oak/v1/population endpoint; Engine.MarkDegraded / Engine.ClearDegraded
// are the manual override verbs.
func WithSynthesis(cfg SynthesisConfig) EngineOption { return core.WithSynthesis(cfg) }

// PopulationStatus is the population layer's externally visible state
// (degraded providers, per-provider baseline quantiles, top providers,
// synthesis counters), returned by Engine.PopulationStatus and served at
// PopulationPathV1.
type PopulationStatus = core.PopulationStatus

// ServerOption configures NewServer.
type ServerOption = origin.Option

// WithUserIDFunc overrides how the origin server identifies the user behind
// a request (for both page delivery and report ingestion). When the
// function returns "", the default cookie mechanism applies.
func WithUserIDFunc(f func(r *http.Request) string) ServerOption { return origin.WithUserIDFunc(f) }

// WithMaxBodyBytes bounds single-report POST bodies (default 4 MB); NDJSON
// batch bodies may total 16× the bound.
func WithMaxBodyBytes(n int64) ServerOption { return origin.WithMaxBodyBytes(n) }

// WithPagesFrom registers every *.html file in fsys at its slash-rooted
// path. Intended for embedded page bundles (embed.FS): a filesystem that
// fails mid-walk panics. Load pages from disk with Server.LoadPages, which
// reports errors instead.
func WithPagesFrom(fsys fs.FS) ServerOption { return origin.WithPagesFrom(fsys) }

// WithRewriteBudget bounds how long page delivery waits for the per-user
// rewrite before serving the page unmodified (degraded but available);
// default 500ms, non-positive disables the bound.
func WithRewriteBudget(d time.Duration) ServerOption { return origin.WithRewriteBudget(d) }

// NewServer wraps an engine as an Oak-fronted origin server. With no
// options it behaves exactly like the historical NewServer(engine):
// cookie-based identity, default body limits, empty page registry.
func NewServer(engine *Engine, opts ...ServerOption) *Server {
	return origin.NewServer(engine, opts...)
}

// NewContentServer returns an empty external content server.
func NewContentServer() *ContentServer { return origin.NewContentServer() }

// Gateway is the cluster tier: an http.Handler that partitions users
// across a fleet of oakd backends by UserHash, fails requests over when a
// backend struggles, re-broadcasts breaker trips and degraded episodes
// fleet-wide, and replaces dead nodes from continuously polled snapshots.
// Deployed standalone as cmd/oakgw; see the "Running a cluster" runbook in
// docs/OPERATIONS.md.
type Gateway = gateway.Gateway

// GatewayConfig configures NewGateway: the backend base URLs (one per
// hash-ring arc), the optional standby, and the probe / forward / snapshot
// cadences. Zero fields take defaults.
type GatewayConfig = gateway.Config

// NewGateway builds a cluster gateway over a fleet of oakd base URLs. Call
// Start to run the background probe, control-sweep and snapshot loops, and
// Close to stop them.
func NewGateway(cfg GatewayConfig) (*Gateway, error) { return gateway.NewGateway(cfg) }

// RuleSet is a parsed operator rule configuration: the unit LoadRules
// returns, NewEngine consumes (via .Rules), and MarshalJSON round-trips.
// The zero value is an empty, valid rule set.
type RuleSet struct {
	// Rules are the compiled-order rules, ready for NewEngine.
	Rules []*Rule
}

// Lint inspects the set for mistakes that compile fine but misbehave in
// production. Warnings are advisory; see LintRules.
func (rs *RuleSet) Lint() []LintWarning { return rules.Lint(rs.Rules) }

// MarshalJSON encodes the set in the JSON rule configuration format (the
// same format LoadRules auto-detects), as indented JSON.
func (rs *RuleSet) MarshalJSON() ([]byte, error) { return rules.MarshalJSON(rs.Rules) }

// LoadRules reads a rule configuration and auto-detects its format: input
// whose first non-space byte is '[' or '{' parses as the JSON rule format,
// anything else as the operator rule DSL. This is the one entry point that
// subsumes ParseRules (DSL) and ParseRulesJSON (JSON):
//
//	f, _ := os.Open("rules.conf")
//	rs, err := oak.LoadRules(f)
//	engine, err := oak.NewEngine(rs.Rules)
func LoadRules(r io.Reader) (*RuleSet, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("oak: read rules: %w", err)
	}
	trimmed := bytes.TrimLeftFunc(data, unicode.IsSpace)
	if len(trimmed) > 0 && (trimmed[0] == '[' || trimmed[0] == '{') {
		parsed, err := rules.ParseJSON(data)
		if err != nil {
			return nil, err
		}
		return &RuleSet{Rules: parsed}, nil
	}
	parsed, err := rules.ParseDSL(string(data))
	if err != nil {
		return nil, err
	}
	return &RuleSet{Rules: parsed}, nil
}

// ParseRules parses the operator rule DSL (heredoc blocks for HTML
// fragments; see internal/rules.ParseDSL for the grammar). Thin wrapper
// kept for compatibility; prefer LoadRules, which auto-detects the format.
func ParseRules(text string) ([]*Rule, error) { return rules.ParseDSL(text) }

// ParseRulesJSON parses the JSON rule configuration format. Thin wrapper
// kept for compatibility; prefer LoadRules, which auto-detects the format.
func ParseRulesJSON(data []byte) ([]*Rule, error) { return rules.ParseJSON(data) }

// MarshalRules encodes a rule set as indented JSON. Thin wrapper kept for
// compatibility; prefer RuleSet.MarshalJSON.
func MarshalRules(rs []*Rule) ([]byte, error) { return rules.MarshalJSON(rs) }

// LintWarning is one advisory finding from LintRules.
type LintWarning = rules.LintWarning

// LintRules inspects a rule set for mistakes that compile fine but
// misbehave in production (alternatives still pointing at the avoided host,
// shadowed fragments, no-op sub-rules, ...). Warnings are advisory.
func LintRules(rs []*Rule) []LintWarning { return rules.Lint(rs) }

// UnmarshalReport decodes a JSON report body.
func UnmarshalReport(data []byte) (*Report, error) { return report.Unmarshal(data) }

// ReportFromHAR converts a browser-devtools HTTP Archive export into an Oak
// report for the given user, so captured real sessions can be fed through
// the engine or the offline analyser.
func ReportFromHAR(data []byte, userID string) (*Report, error) {
	return report.FromHAR(data, userID)
}

// Persistence: Engine.ExportState serialises all per-user state (violation
// counters, live activations) and Engine.ImportState restores it, so an Oak
// deployment restarts without losing what it learned about its users:
//
//	data, _ := engine.ExportState()
//	os.WriteFile("oak-state.json", data, 0o600)
//	// ... later, on a fresh engine with the same rules:
//	engine.ImportState(data)
//
// For crash safety, prefer the file-level API: Engine.SaveStateFile writes
// a checksummed snapshot atomically (fsync + rename) and rotates the
// previous snapshot to a .bak, and Engine.LoadStateFile restores it,
// falling back to the backup when the primary is missing or corrupt — a
// torn write or flipped bit costs one save interval, never the whole state:
//
//	engine.SaveStateFile("oak-state.json")
//	// ... later:
//	src, err := engine.LoadStateFile("oak-state.json") // src: fresh/snapshot/backup
