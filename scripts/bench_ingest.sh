#!/bin/sh
# bench_ingest.sh — run the report-ingest benchmarks and record the results
# in BENCH_ingest.json, so successive PRs leave a perf trajectory that can
# be compared (ns/op, reports/sec and allocs/op per benchmark, plus the
# parallel speedup of the sharded engine over the single-lock baseline and
# the binary-vs-JSON wire-byte ratio of the OAKRPT1 format).
#
# Usage: scripts/bench_ingest.sh [benchtime]   (default 1s)
set -e
cd "$(dirname "$0")/.."

benchtime="${1:-1s}"
out="BENCH_ingest.json"

echo "== go test -bench HandleReport/HandleBatch/Ingest (benchtime $benchtime) =="
raw=$(go test -run '^$' \
	-bench 'BenchmarkHandleReport(Serial|Parallel|ParallelSingleShard|Pipeline)$|BenchmarkHandleBatch$|BenchmarkIngest(JSON|Binary)$' \
	-benchmem -count 1 -benchtime "$benchtime" ./internal/core)
echo "$raw"

echo "$raw" | awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	iters = $2
	ns = ""; rps = ""; allocs = ""; wire = ""
	for (i = 3; i <= NF; i++) {
		if ($i == "ns/op") ns = $(i - 1)
		if ($i == "reports/sec") rps = $(i - 1)
		if ($i == "allocs/op") allocs = $(i - 1)
		if ($i == "wire_bytes") wire = $(i - 1)
	}
	if (ns == "") next
	if (rps == "") rps = 1e9 / ns
	n++
	names[n] = name; iterations[n] = iters; nsop[n] = ns; persec[n] = rps
	allocsop[n] = allocs; wirebytes[n] = wire
	if (name == "BenchmarkHandleReportParallel") parallel = rps
	if (name == "BenchmarkHandleReportParallelSingleShard") single = rps
	if (name == "BenchmarkIngestJSON") jsonwire = wire
	if (name == "BenchmarkIngestBinary") binwire = wire
}
END {
	printf "{\n"
	printf "  \"generated\": \"%s\",\n", date
	printf "  \"cpu\": \"%s\",\n", cpu
	printf "  \"benchmarks\": [\n"
	for (i = 1; i <= n; i++) {
		printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"reports_per_sec\": %.0f", \
			names[i], iterations[i], nsop[i], persec[i]
		if (allocsop[i] != "") printf ", \"allocs_per_op\": %s", allocsop[i]
		if (wirebytes[i] != "") printf ", \"wire_bytes\": %s", wirebytes[i]
		printf "}%s\n", (i < n ? "," : "")
	}
	printf "  ]"
	if (parallel > 0 && single > 0)
		printf ",\n  \"parallel_speedup_vs_single_shard\": %.2f", parallel / single
	if (jsonwire > 0 && binwire > 0)
		printf ",\n  \"binary_wire_bytes_vs_json\": %.2f", binwire / jsonwire
	printf "\n}\n"
}' >"$out"

# Stamp the core count the run actually had; the speedup is only meaningful
# relative to it (a single-core machine cannot show parallel speedup).
cores=$(go env GOMAXPROCS 2>/dev/null || true)
[ -n "$cores" ] || cores=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
tmp="$out.tmp"
sed "s/^  \"cpu\":/  \"cores\": $cores,\n  \"cpu\":/" "$out" >"$tmp" && mv "$tmp" "$out"

echo "wrote $out"
