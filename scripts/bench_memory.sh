#!/bin/sh
# bench_memory.sh — run the spill-tier memory benchmarks and record the
# results in BENCH_memory.json: the resident footprint per user under a
# residency cap, the spill→rehydrate round-trip cost with rehydration
# latency percentiles, and serve latency over a population that is 95%
# cold (spilled) — whose p99 must sit far inside the page-delivery
# rewrite budget (origin.DefaultRewriteBudget, 500ms).
#
# Usage: scripts/bench_memory.sh [benchtime]   (default 1s)
set -e
cd "$(dirname "$0")/.."

benchtime="${1:-1s}"
out="BENCH_memory.json"

echo "== go test -bench SpillRehydrate/ServeCold95/IngestCapped (benchtime $benchtime) =="
raw=$(go test -run '^$' \
	-bench 'BenchmarkSpillRehydrate$|BenchmarkServeCold95$|BenchmarkIngestCapped$' \
	-benchmem -count 1 -benchtime "$benchtime" ./internal/core)
echo "$raw"

echo "$raw" | awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	iters = $2
	ns = ""; allocs = ""
	delete extra
	nx = 0
	for (i = 3; i <= NF; i++) {
		if ($i == "ns/op") ns = $(i - 1)
		if ($i == "allocs/op") allocs = $(i - 1)
		if ($i ~ /^(rehydrate_p50_ms|rehydrate_p99_ms|serve_p50_ms|serve_p99_ms|bytes_per_resident_user|resident_profiles|total_profiles)$/) {
			nx++
			ekey[nx] = $i
			eval[nx] = $(i - 1)
		}
	}
	if (ns == "") next
	n++
	names[n] = name; iterations[n] = iters; nsop[n] = ns; allocsop[n] = allocs
	line = ""
	for (j = 1; j <= nx; j++)
		line = line sprintf(", \"%s\": %s", ekey[j], eval[j])
	extras[n] = line
	for (j = 1; j <= nx; j++) {
		if (names[n] == "BenchmarkServeCold95" && ekey[j] == "serve_p99_ms") servep99 = eval[j]
		if (names[n] == "BenchmarkSpillRehydrate" && ekey[j] == "rehydrate_p99_ms") rehydratep99 = eval[j]
		if (names[n] == "BenchmarkIngestCapped" && ekey[j] == "bytes_per_resident_user") bpu = eval[j]
		if (names[n] == "BenchmarkIngestCapped" && ekey[j] == "resident_profiles") resident = eval[j]
		if (names[n] == "BenchmarkIngestCapped" && ekey[j] == "total_profiles") total = eval[j]
	}
}
END {
	printf "{\n"
	printf "  \"generated\": \"%s\",\n", date
	printf "  \"cpu\": \"%s\",\n", cpu
	printf "  \"rewrite_budget_ms\": 500,\n"
	printf "  \"benchmarks\": [\n"
	for (i = 1; i <= n; i++) {
		printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", \
			names[i], iterations[i], nsop[i]
		if (allocsop[i] != "") printf ", \"allocs_per_op\": %s", allocsop[i]
		printf "%s}%s\n", extras[i], (i < n ? "," : "")
	}
	printf "  ]"
	if (servep99 != "") {
		printf ",\n  \"cold95_serve_p99_ms\": %s", servep99
		printf ",\n  \"cold95_serve_p99_within_budget\": %s", (servep99 + 0 < 500 ? "true" : "false")
	}
	if (rehydratep99 != "") printf ",\n  \"rehydrate_p99_ms\": %s", rehydratep99
	if (bpu != "") printf ",\n  \"bytes_per_resident_user\": %s", bpu
	if (resident != "" && total != "" && total + 0 > 0)
		printf ",\n  \"resident_fraction\": %.3f", resident / total
	printf "\n}\n"
}' >"$out"

echo "wrote $out"
