#!/bin/sh
# bench_gateway.sh — run the cluster-gateway benchmarks and record the
# results in BENCH_gateway.json, so successive PRs leave a trajectory for
# the numbers that matter to the cluster tier:
#
#   - forwarding_overhead: batch-ingest throughput direct at one oakd
#     divided by the same through the gateway (the warm path, where the
#     extra hop amortises across the batch). Gated at <= 1.25.
#   - report_overhead / page_overhead: the same ratio for single-report
#     POSTs and page serves — per-request latency cost of the extra hop,
#     informational.
#   - failover_reroute: reports/sec on the steady-state rerouted path
#     (range owner dead, standby serving), plus the chaos-measured wall
#     time from killing a backend to a clean full-fleet round
#     (failover_time_to_reroute_ms).
#
# Usage: scripts/bench_gateway.sh [benchtime]   (default 1s)
set -e
cd "$(dirname "$0")/.."

benchtime="${1:-1s}"
out="BENCH_gateway.json"

echo "== go test -bench gateway forwarding overhead + failover (benchtime $benchtime) =="
raw=$(go test -run '^$' -bench 'Benchmark(Report(Direct|ViaGateway|Failover)|Batch(Direct|ViaGateway)|Page(Direct|ViaGateway))' \
	-count 1 -benchtime "$benchtime" ./internal/gateway)
echo "$raw"

echo "== go test -run TestNodeLossChaos (time-to-reroute) =="
chaos=$(go test -race -run 'TestNodeLossChaos' -count=1 -v ./internal/gateway)
reroute=$(echo "$chaos" | sed -n 's/.*time to reroute (kill -> dead + clean round): \([0-9.]*\)ms.*/\1/p' | head -1)
mitigate=$(echo "$chaos" | sed -n 's/.*time to fleet-wide mitigation \([0-9.]*\)ms.*/\1/p' | head -1)
echo "time to reroute: ${reroute:-?}ms, fleet-wide mitigation: ${mitigate:-?}ms"

echo "$raw" | awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
	-v reroute="${reroute:-0}" -v mitigate="${mitigate:-0}" '
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	iters = $2
	ns = ""; rps = ""
	for (i = 3; i <= NF; i++) {
		if ($i == "ns/op") ns = $(i - 1)
		if ($i == "reports/sec" || $i == "pages/sec") rps = $(i - 1)
	}
	if (ns == "") next
	n++
	names[n] = name; iterations[n] = iters; nsop[n] = ns; rate[n] = rps
	nsfor[name] = ns
}
END {
	printf "{\n"
	printf "  \"generated\": \"%s\",\n", date
	printf "  \"cpu\": \"%s\",\n", cpu
	printf "  \"benchmarks\": [\n"
	for (i = 1; i <= n; i++) {
		printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"per_sec\": %.0f}%s\n", \
			names[i], iterations[i], nsop[i], rate[i], (i < n ? "," : "")
	}
	printf "  ]"
	if (nsfor["BenchmarkBatchDirect"] > 0 && nsfor["BenchmarkBatchViaGateway"] > 0)
		printf ",\n  \"forwarding_overhead\": %.3f", nsfor["BenchmarkBatchViaGateway"] / nsfor["BenchmarkBatchDirect"]
	if (nsfor["BenchmarkReportDirect"] > 0 && nsfor["BenchmarkReportViaGateway"] > 0)
		printf ",\n  \"report_overhead\": %.3f", nsfor["BenchmarkReportViaGateway"] / nsfor["BenchmarkReportDirect"]
	if (nsfor["BenchmarkPageDirect"] > 0 && nsfor["BenchmarkPageViaGateway"] > 0)
		printf ",\n  \"page_overhead\": %.3f", nsfor["BenchmarkPageViaGateway"] / nsfor["BenchmarkPageDirect"]
	if (nsfor["BenchmarkReportFailover"] > 0)
		printf ",\n  \"failover_reroute_ns\": %s", nsfor["BenchmarkReportFailover"]
	if (reroute > 0)
		printf ",\n  \"failover_time_to_reroute_ms\": %s", reroute
	if (mitigate > 0)
		printf ",\n  \"fleet_mitigation_time_ms\": %s", mitigate
	printf "\n}\n"
}' >"$out"

echo "wrote $out"
