#!/bin/sh
# bench_synth.sh — run the population-detection benchmarks and record the
# results in BENCH_synth.json, so successive PRs leave a trajectory for the
# three numbers that matter to the sketch/synthesis design:
#
#   - synth_overhead: reports/sec with synthesis off divided by reports/sec
#     with it on (serial ingest). Acceptance bar 1.05 — per report the
#     population layer pays one sketch feed per contacted provider plus an
#     atomic nextTick load; the window fold is amortised across the whole
#     window's reports.
#   - sketch insert/merge ns/op (internal/stats): the primitive the feed is
#     built on; bounded memory means these must stay allocation-flat.
#   - popslow time-to-mitigation: mean degraded rounds until the victim's
#     page is rewritten, from the checked-in popslow scenario (deterministic
#     per its spec seed). Per-user detection alone never mitigates these
#     low-report users, so this number exists only because of synthesis.
#
# The parallel SynthOn benchmark tracks contention: sketch feeds happen
# under the shard write lock ingest already holds, so a regression there
# without one in the serial number means lock-hold time grew.
#
# Usage: scripts/bench_synth.sh [benchtime]   (default 1s)
set -e
cd "$(dirname "$0")/.."

benchtime="${1:-1s}"
out="BENCH_synth.json"
scen=$(mktemp)
trap 'rm -f "$scen"' EXIT

echo "== go test -bench population ingest on/off + sketch primitives (benchtime $benchtime) =="
raw=$(go test -run '^$' \
	-bench 'Benchmark(HandleReportSynth(On|Off|OnParallel)|QuantileSketch(Add|Merge))$' \
	-benchmem -count 1 -benchtime "$benchtime" ./internal/core ./internal/stats)
echo "$raw"

echo "== popslow scenario (time-to-mitigation) =="
go run ./cmd/oakbench scenario -out "$scen" popslow

# Pull the mitigation numbers out of the scenario matrix JSON (stable
# indented encoding, one field per line).
mean_mit=$(awk -F': ' '/"meanReportsToMitigate"/ { gsub(/,/, "", $2); print $2; exit }' "$scen")
synth_acts=$(awk -F': ' '/"synthesizedActivations"/ { gsub(/,/, "", $2); print $2; exit }' "$scen")
pop_trips=$(awk -F': ' '/"populationTrips"/ { gsub(/,/, "", $2); print $2; exit }' "$scen")

echo "$raw" | awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
	-v mean_mit="${mean_mit:-0}" -v synth_acts="${synth_acts:-0}" -v pop_trips="${pop_trips:-0}" '
/^cpu:/ { if (cpu == "") { sub(/^cpu: */, ""); cpu = $0 } }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	iters = $2
	ns = ""; rps = ""
	for (i = 3; i <= NF; i++) {
		if ($i == "ns/op") ns = $(i - 1)
		if ($i == "reports/sec") rps = $(i - 1)
	}
	if (ns == "") next
	n++
	names[n] = name; iterations[n] = iters; nsop[n] = ns; rate[n] = rps
	if (name == "BenchmarkHandleReportSynthOn") on = rps
	if (name == "BenchmarkHandleReportSynthOff") off = rps
}
END {
	printf "{\n"
	printf "  \"generated\": \"%s\",\n", date
	printf "  \"cpu\": \"%s\",\n", cpu
	printf "  \"benchmarks\": [\n"
	for (i = 1; i <= n; i++) {
		printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", \
			names[i], iterations[i], nsop[i]
		if (rate[i] != "")
			printf ", \"reports_per_sec\": %.0f", rate[i]
		printf "}%s\n", (i < n ? "," : "")
	}
	printf "  ]"
	if (on > 0 && off > 0)
		printf ",\n  \"synth_overhead\": %.3f", off / on
	printf ",\n  \"popslow_mean_reports_to_mitigate\": %s", mean_mit
	printf ",\n  \"popslow_synthesized_activations\": %s", synth_acts
	printf ",\n  \"popslow_population_trips\": %s", pop_trips
	printf "\n}\n"
}' >"$out"

echo "wrote $out"
