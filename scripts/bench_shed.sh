#!/bin/sh
# bench_shed.sh — run the overload-protection benchmarks and record the
# results in BENCH_sheds.json, so successive PRs leave a trajectory for the
# two numbers that matter to load shedding:
#
#   - admission_overhead: reports/sec with shedding enabled divided by
#     reports/sec without (happy path, nothing sheds). Should hover at 1.0;
#     a drop means the admission fast path grew a cost.
#   - sheds_per_sec: how quickly a saturated engine refuses work. This is
#     the payoff — with shedding, overload costs nanoseconds per refusal
#     instead of an unbounded block per submitter.
#
# Usage: scripts/bench_shed.sh [benchtime]   (default 1s)
set -e
cd "$(dirname "$0")/.."

benchtime="${1:-1s}"
out="BENCH_sheds.json"

echo "== go test -bench shedding on/off + saturated (benchtime $benchtime) =="
raw=$(go test -run '^$' -bench 'Benchmark(PipelineShedding(On|Off)|ShedSaturated)' \
	-benchmem -count 1 -benchtime "$benchtime" ./internal/core)
echo "$raw"

echo "$raw" | awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	iters = $2
	ns = ""; rps = ""; sps = ""
	for (i = 3; i <= NF; i++) {
		if ($i == "ns/op") ns = $(i - 1)
		if ($i == "reports/sec") rps = $(i - 1)
		if ($i == "sheds/sec") sps = $(i - 1)
	}
	if (ns == "") next
	n++
	names[n] = name; iterations[n] = iters; nsop[n] = ns
	rate[n] = (sps != "" ? sps : rps)
	unit[n] = (sps != "" ? "sheds_per_sec" : "reports_per_sec")
	if (name == "BenchmarkPipelineSheddingOn") on = rps
	if (name == "BenchmarkPipelineSheddingOff") off = rps
	if (name == "BenchmarkShedSaturated") sheds = sps
}
END {
	printf "{\n"
	printf "  \"generated\": \"%s\",\n", date
	printf "  \"cpu\": \"%s\",\n", cpu
	printf "  \"benchmarks\": [\n"
	for (i = 1; i <= n; i++) {
		printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"%s\": %.0f}%s\n", \
			names[i], iterations[i], nsop[i], unit[i], rate[i], (i < n ? "," : "")
	}
	printf "  ]"
	if (on > 0 && off > 0)
		printf ",\n  \"admission_overhead\": %.3f", off / on
	if (sheds > 0)
		printf ",\n  \"sheds_per_sec\": %.0f", sheds
	printf "\n}\n"
}' >"$out"

echo "wrote $out"
