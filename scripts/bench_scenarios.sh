#!/bin/sh
# bench_scenarios.sh — run the full scenario matrix and record the
# decision-quality results in BENCH_scenarios.json, so successive PRs leave a
# trajectory for how well the engine's decisions track injected ground truth:
# per-scenario violator precision/recall, mean reports-to-mitigation, the
# fraction of pages served degraded, admission-queue sheds and retries,
# breaker trips, and backup-state recoveries.
#
# The matrix is deterministic per spec seed (the runs use a virtual clock and
# hash-derived jitter), so BENCH_scenarios.json diffs across PRs reflect
# engine behaviour changes, never run-to-run noise. Gate floors live in each
# spec's "expect" block; a miss makes this script (and the PR verify smoke in
# verify.sh) fail.
#
# Usage: scripts/bench_scenarios.sh [scenario...]   (default: all)
set -e
cd "$(dirname "$0")/.."

out="BENCH_scenarios.json"

if [ "$#" -gt 0 ]; then
	go run ./cmd/oakbench scenario -out "$out" "$@"
else
	go run ./cmd/oakbench scenario -out "$out" all
fi
