#!/bin/sh
# verify.sh — the repository verify path, run on every PR.
#
# Beyond the tier-1 gate (go build && go test), this enforces formatting,
# vet cleanliness, and — because internal/obs ships lock-free histograms
# and a ring buffer feeding the concurrent engine — race-checks the
# packages where that concurrency lives (including the chaos suite in
# internal/faultinject, which drives the full loop under injected faults).
# A short fuzz smoke over the snapshot importer keeps hostile state files
# from ever aborting a boot; another over the compiled applier keeps the
# single-pass rewriter provably equivalent to the sequential reference;
# two more pin the report fast-path decoder to encoding/json and the
# OAKRPT1 binary codec to round-trip identity with typed rejection of
# hostile frames. A one-iteration serve benchmark run keeps the benchmark
# code compiling, and the ingest smoke additionally gates the steady-state
# JSON ingest path at <= 8 allocs/op (TestHandleReportSteadyStateAllocs),
# so a scratch buffer or pool silently falling out of reuse fails the
# verify by name. The
# guard chaos smoke re-runs the kill-the-alternate scenario on its own so a
# breaker regression fails the verify with a named step; one-iteration guard
# and synthesis benchmark runs keep BENCH_guard.json and BENCH_synth.json
# producible. Finally, a compact scenario smoke runs four checked-in
# end-to-end workloads (cellular, blackout, slowloris, popslow) against
# injected ground truth and gates on the precision/recall/trip floors in
# each spec's expect block — popslow additionally requires at least one
# breaker trip and one synthesized activation, so a regression in
# detection quality, guard response, population-level synthesis, or
# false-positive control fails the verify even when every unit test still
# passes. The nodeloss chaos smoke does the same for the cluster tier: it
# kills a gateway backend mid-traffic and requires zero 5xx after the
# probe window, snapshot-driven replacement, and a fleet-wide breaker
# broadcast with recall 1.0. The spill chaos smoke kills an engine
# mid-spill (torn segment tail) and hole-punches a sealed segment under a
# live engine, requiring recovery with no acknowledged state lost and
# byte-identical exports across residency layouts; a one-iteration memory
# benchmark run keeps BENCH_memory.json producible.
set -e
cd "$(dirname "$0")/.."

echo "== go build ./... =="
go build ./...

echo "== gofmt -l . =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet ./... =="
go vet ./...

echo "== go test ./... =="
go test ./...

echo "== go test -race ./internal/core ./internal/obs ./internal/origin ./internal/faultinject ./internal/gateway =="
go test -race ./internal/core ./internal/obs ./internal/origin ./internal/faultinject ./internal/gateway

echo "== fuzz smoke: FuzzImportState (5s) =="
go test -run '^$' -fuzz FuzzImportState -fuzztime 5s ./internal/core

echo "== fuzz smoke: FuzzApplyEquivalence (5s) =="
go test -run '^$' -fuzz FuzzApplyEquivalence -fuzztime 5s ./internal/rules

echo "== fuzz smoke: FuzzDecodeEquivalence (5s) =="
go test -run '^$' -fuzz FuzzDecodeEquivalence -fuzztime 5s ./internal/report

echo "== fuzz smoke: FuzzBinaryRoundTrip (5s) =="
go test -run '^$' -fuzz FuzzBinaryRoundTrip -fuzztime 5s ./internal/report

echo "== serve-path benchmark smoke (1 iteration) =="
go test -run '^$' -bench 'BenchmarkModifyPage' -benchtime 1x ./internal/core

echo "== ingest bench smoke + steady-state alloc gate (JSON path <= 8 allocs/op) =="
go test -run 'TestHandleReportSteadyStateAllocs' -count=1 ./internal/core
go test -run '^$' -bench 'BenchmarkHandleReportSerial$|BenchmarkIngest(JSON|Binary)$' -benchtime 1x ./internal/core

echo "== guard chaos smoke: kill-the-alternate loop under -race =="
go test -race -run 'TestChaosGuardKillsAlternateMidRun' -count=1 ./internal/faultinject

echo "== nodeloss chaos smoke: gateway failover + snapshot replacement under -race =="
go test -race -run 'TestNodeLossChaos' -count=1 ./internal/gateway

echo "== spill chaos smoke: kill-mid-spill + hole-punch under -race =="
go test -race -run 'TestSpillChaos' -count=1 ./internal/faultinject

echo "== memory benchmark smoke (1 iteration) =="
go test -run '^$' -bench 'BenchmarkSpillRehydrate$|BenchmarkServeCold95$|BenchmarkIngestCapped$' -benchtime 1x ./internal/core

echo "== guard benchmark smoke (1 iteration) =="
go test -run '^$' -bench 'BenchmarkActivationGuardOn|BenchmarkGuardRollback100$' -benchtime 1x ./internal/core

echo "== synthesis benchmark smoke (1 iteration) =="
go test -run '^$' -bench 'BenchmarkHandleReportSynth(On|Off)$' -benchtime 1x ./internal/core

echo "== scenario smoke: cellular + blackout + slowloris + popslow (gated on expect floors) =="
go run ./cmd/oakbench scenario cellular blackout slowloris popslow

echo "verify: OK"
