#!/bin/sh
# verify.sh — the repository verify path, run on every PR.
#
# Beyond the tier-1 gate (go build && go test), this enforces formatting,
# vet cleanliness, and — because internal/obs ships lock-free histograms
# and a ring buffer feeding the concurrent engine — race-checks the
# packages where that concurrency lives.
set -e
cd "$(dirname "$0")/.."

echo "== go build ./... =="
go build ./...

echo "== gofmt -l . =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet ./... =="
go vet ./...

echo "== go test ./... =="
go test ./...

echo "== go test -race ./internal/core ./internal/obs ./internal/origin =="
go test -race ./internal/core ./internal/obs ./internal/origin

echo "verify: OK"
