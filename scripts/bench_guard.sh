#!/bin/sh
# bench_guard.sh — run the guardrail benchmarks and record the results in
# BENCH_guard.json, so successive PRs leave a trajectory for the two numbers
# that matter to the circuit-breaker design:
#
#   - activation_overhead: reports/sec without the guard divided by
#     reports/sec with it (every breaker closed). Should hover at 1.0 and
#     stay under 1.05 — the activation path pays one leaf-mutex Allow call
#     plus provider-index upkeep.
#   - rollback ns per deactivation at 100/1000/5000 users: the latency
#     between a provider tripping and the whole population being off it.
#
# Usage: scripts/bench_guard.sh [benchtime]   (default 1s)
set -e
cd "$(dirname "$0")/.."

benchtime="${1:-1s}"
out="BENCH_guard.json"

echo "== go test -bench guard activation on/off + rollback scaling (benchtime $benchtime) =="
raw=$(go test -run '^$' -bench 'Benchmark(ActivationGuard(On|Off)|GuardRollback(100|1000|5000))' \
	-benchmem -count 1 -benchtime "$benchtime" ./internal/core)
echo "$raw"

echo "$raw" | awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	iters = $2
	ns = ""; rps = ""; deact = ""
	for (i = 3; i <= NF; i++) {
		if ($i == "ns/op") ns = $(i - 1)
		if ($i == "reports/sec") rps = $(i - 1)
		if ($i == "deactivations/op") deact = $(i - 1)
	}
	if (ns == "") next
	n++
	names[n] = name; iterations[n] = iters; nsop[n] = ns
	rate[n] = (deact != "" ? deact : rps)
	unit[n] = (deact != "" ? "deactivations_per_op" : "reports_per_sec")
	if (name == "BenchmarkActivationGuardOn") on = rps
	if (name == "BenchmarkActivationGuardOff") off = rps
	if (deact != "" && deact > 0) perdeact[name] = ns / deact
}
END {
	printf "{\n"
	printf "  \"generated\": \"%s\",\n", date
	printf "  \"cpu\": \"%s\",\n", cpu
	printf "  \"benchmarks\": [\n"
	for (i = 1; i <= n; i++) {
		printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"%s\": %.0f}%s\n", \
			names[i], iterations[i], nsop[i], unit[i], rate[i], (i < n ? "," : "")
	}
	printf "  ]"
	if (on > 0 && off > 0)
		printf ",\n  \"activation_overhead\": %.3f", off / on
	if ("BenchmarkGuardRollback100" in perdeact)
		printf ",\n  \"rollback_ns_per_deactivation_100\": %.0f", perdeact["BenchmarkGuardRollback100"]
	if ("BenchmarkGuardRollback1000" in perdeact)
		printf ",\n  \"rollback_ns_per_deactivation_1000\": %.0f", perdeact["BenchmarkGuardRollback1000"]
	if ("BenchmarkGuardRollback5000" in perdeact)
		printf ",\n  \"rollback_ns_per_deactivation_5000\": %.0f", perdeact["BenchmarkGuardRollback5000"]
	printf "\n}\n"
}' >"$out"

echo "wrote $out"
