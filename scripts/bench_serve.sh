#!/bin/sh
# bench_serve.sh — run the serve-path benchmarks and record the results in
# BENCH_serve.json: cold vs warm ModifyPage (ns/op and pages/sec), the
# parallel warm path, the no-op path's allocations (must be zero), and the
# warm-over-cold speedup the rewrite cache buys.
#
# Usage: scripts/bench_serve.sh [benchtime]   (default 1s)
set -e
cd "$(dirname "$0")/.."

benchtime="${1:-1s}"
out="BENCH_serve.json"

echo "== go test -bench ModifyPage/ApplySequential (benchtime $benchtime) =="
raw=$(go test -run '^$' -bench 'BenchmarkModifyPage|BenchmarkApplySequentialReference' \
	-benchmem -count 1 -benchtime "$benchtime" ./internal/core)
echo "$raw"

echo "$raw" | awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	iters = $2
	ns = ""; allocs = ""
	for (i = 3; i <= NF; i++) {
		if ($i == "ns/op") ns = $(i - 1)
		if ($i == "allocs/op") allocs = $(i - 1)
	}
	if (ns == "") next
	n++
	names[n] = name; iterations[n] = iters; nsop[n] = ns; apo[n] = allocs
	if (name == "BenchmarkModifyPageCold") cold = ns
	if (name == "BenchmarkModifyPageWarm") warm = ns
	if (name == "BenchmarkApplySequentialReference") seq = ns
	if (name == "BenchmarkModifyPageNoOp") noop_allocs = allocs
}
END {
	printf "{\n"
	printf "  \"generated\": \"%s\",\n", date
	printf "  \"cpu\": \"%s\",\n", cpu
	printf "  \"benchmarks\": [\n"
	for (i = 1; i <= n; i++) {
		printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"pages_per_sec\": %.0f, \"allocs_per_op\": %s}%s\n", \
			names[i], iterations[i], nsop[i], 1e9 / nsop[i], (apo[i] == "" ? "null" : apo[i]), (i < n ? "," : "")
	}
	printf "  ]"
	if (cold > 0 && warm > 0)
		printf ",\n  \"warm_speedup_vs_cold\": %.2f", cold / warm
	if (seq > 0 && cold > 0)
		printf ",\n  \"compiled_speedup_vs_sequential\": %.2f", seq / cold
	if (noop_allocs != "")
		printf ",\n  \"noop_allocs_per_op\": %s", noop_allocs
	printf "\n}\n"
}' >"$out"

cores=$(go env GOMAXPROCS 2>/dev/null || true)
[ -n "$cores" ] || cores=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
tmp="$out.tmp"
sed "s/^  \"cpu\":/  \"cores\": $cores,\n  \"cpu\":/" "$out" >"$tmp" && mv "$tmp" "$out"

echo "wrote $out"
