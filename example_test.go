package oak_test

import (
	"fmt"
	"time"

	"oak"
)

// ExampleParseRules shows the operator rule DSL: the paper's running
// example, jquery served from s1 with an identical copy on s2.
func ExampleParseRules() {
	rules, err := oak.ParseRules(`
rule jquery-cdn {
  type 2
  default "<script src=\"http://s1.com/jquery.js\">"
  alt "<script src=\"http://s2.net/jquery.js\">"
  ttl 0      # never expire
  scope *    # site wide
}`)
	if err != nil {
		fmt.Println("parse:", err)
		return
	}
	r := rules[0]
	fmt.Println(r.ID, r.Type, r.Scope)
	// Output: jquery-cdn type2-replace-same *
}

// ExampleNewEngine walks the full decision loop without any HTTP: feed a
// report in which one server badly under-performs its peers, then watch the
// user's page get rewritten.
func ExampleNewEngine() {
	rules, _ := oak.ParseRules(`
rule swap-s1 {
  type 2
  default "<script src=\"http://s1.com/jquery.js\">"
  alt "<script src=\"http://s2.net/jquery.js\">"
  ttl 0
  scope *
}`)
	engine, _ := oak.NewEngine(rules)

	entry := func(host string, ms float64) oak.Entry {
		return oak.Entry{
			URL:            "http://" + host + "/jquery.js",
			ServerAddr:     "ip-" + host,
			SizeBytes:      8 * 1024,
			DurationMillis: ms,
		}
	}
	report := &oak.Report{
		UserID: "alice",
		Page:   "/index.html",
		Entries: []oak.Entry{
			entry("s1.com", 2400), // the violator
			entry("cdn-a.example", 90),
			entry("cdn-b.example", 110),
			entry("cdn-c.example", 100),
			entry("cdn-d.example", 95),
		},
	}
	res, _ := engine.HandleReport(report)
	fmt.Println("violators:", len(res.Violations))

	page := `<script src="http://s1.com/jquery.js">`
	out, _ := engine.ModifyPage("alice", "/index.html", page)
	fmt.Println(out)
	// Bob never reported anything, so his page is untouched.
	bob, _ := engine.ModifyPage("bob", "/index.html", page)
	fmt.Println(bob == page)
	// Output:
	// violators: 1
	// <script src="http://s2.net/jquery.js">
	// true
}

// ExamplePolicy demonstrates the operator policy knobs of Section 4.2.4:
// require three violations before switching, and expire activations.
func ExamplePolicy() {
	rules, _ := oak.ParseRules(`
rule cautious {
  type 2
  default "<img src=\"http://cdn.example/a.png\">"
  alt "<img src=\"http://backup.example/a.png\">"
  ttl 1h
  scope *
}`)
	engine, _ := oak.NewEngine(rules,
		oak.WithPolicy(oak.Policy{MinViolations: 3}),
		oak.WithClock(func() time.Time {
			return time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
		}),
	)
	rep := &oak.Report{
		UserID: "carol",
		Page:   "/",
		Entries: []oak.Entry{
			{URL: "http://cdn.example/a.png", ServerAddr: "1.1.1.1", SizeBytes: 1024, DurationMillis: 3000},
			{URL: "http://h2.example/b.png", ServerAddr: "2.2.2.2", SizeBytes: 1024, DurationMillis: 100},
			{URL: "http://h3.example/c.png", ServerAddr: "3.3.3.3", SizeBytes: 1024, DurationMillis: 110},
			{URL: "http://h4.example/d.png", ServerAddr: "4.4.4.4", SizeBytes: 1024, DurationMillis: 95},
		},
	}
	for i := 1; i <= 3; i++ {
		res, _ := engine.HandleReport(rep)
		fmt.Printf("report %d: %d rule changes\n", i, len(res.Changes))
	}
	// Output:
	// report 1: 0 rule changes
	// report 2: 0 rule changes
	// report 3: 1 rule changes
}
