.PHONY: verify test race vet fmt bench bench-ingest bench-serve bench-shed bench-guard bench-synth bench-scenarios bench-gateway bench-memory bench-all chaos fuzz

# Full PR verify path: build, formatting, vet, tests, and race-checking of
# the concurrent engine + observability packages. See scripts/verify.sh.
verify:
	sh scripts/verify.sh

test:
	go test ./...

race:
	go test -race ./internal/core ./internal/obs ./internal/origin ./internal/faultinject ./internal/gateway

# Chaos suite: the full client -> origin -> engine -> persistence loop under
# injected transport faults, queue saturation and snapshot corruption, with
# the race detector on. See internal/faultinject.
chaos:
	go test -race -run Chaos -v ./internal/faultinject

# Short fuzz pass over the snapshot importer (hostile state files).
fuzz:
	go test -run '^$$' -fuzz FuzzImportState -fuzztime 10s ./internal/core

vet:
	go vet ./...

fmt:
	gofmt -l -w .

# Ingest benchmarks + BENCH_ingest.json (perf trajectory across PRs:
# ns/op, reports/sec, allocs/op, and the OAKRPT1 binary-vs-JSON wire bytes).
bench-ingest:
	sh scripts/bench_ingest.sh

bench: bench-ingest

# Serve-path benchmarks + BENCH_serve.json (cold vs warm rewrite, cache
# speedup, zero-alloc no-op path).
bench-serve:
	sh scripts/bench_serve.sh

# Overload-protection benchmarks + BENCH_sheds.json (shedding on vs off,
# and the cost of refusing work when saturated).
bench-shed:
	sh scripts/bench_shed.sh

# Guardrail benchmarks + BENCH_guard.json (breaker-check overhead on the
# activation path, bulk-rollback latency vs population size).
bench-guard:
	sh scripts/bench_guard.sh

# Population-detection benchmarks + BENCH_synth.json (ingest overhead of
# the per-report sketch feed, serial and contended; acceptance bar 1.05).
bench-synth:
	sh scripts/bench_synth.sh

# Scenario matrix + BENCH_scenarios.json (decision quality per scenario:
# violator precision/recall, time-to-mitigation, degraded pages, sheds,
# breaker trips, state recoveries). Deterministic per spec seed; exits
# non-zero if any scenario misses a floor in its expect block.
bench-scenarios:
	sh scripts/bench_scenarios.sh

# Cluster-gateway benchmarks + BENCH_gateway.json (forwarding overhead vs
# direct on the batch warm path, gated <= 1.25x; per-request report/page
# hop cost; failover reroute throughput and chaos-measured time-to-reroute).
bench-gateway:
	sh scripts/bench_gateway.sh

# Spill-tier memory benchmarks + BENCH_memory.json (resident bytes per
# user under the residency cap, rehydration latency percentiles, and serve
# p99 over a 95%-cold population vs the 500ms rewrite budget).
bench-memory:
	sh scripts/bench_memory.sh

# Every benchmark in the repo, raw output only.
bench-all:
	go test -bench=. -benchmem ./...
