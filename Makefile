.PHONY: verify test race vet fmt bench bench-all

# Full PR verify path: build, formatting, vet, tests, and race-checking of
# the concurrent engine + observability packages. See scripts/verify.sh.
verify:
	sh scripts/verify.sh

test:
	go test ./...

race:
	go test -race ./internal/core ./internal/obs ./internal/origin

vet:
	go vet ./...

fmt:
	gofmt -l -w .

# Ingest benchmarks + BENCH_ingest.json (perf trajectory across PRs).
bench:
	sh scripts/bench_ingest.sh

# Every benchmark in the repo, raw output only.
bench-all:
	go test -bench=. -benchmem ./...
