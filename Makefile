.PHONY: verify test race vet fmt bench

# Full PR verify path: build, formatting, vet, tests, and race-checking of
# the concurrent engine + observability packages. See scripts/verify.sh.
verify:
	sh scripts/verify.sh

test:
	go test ./...

race:
	go test -race ./internal/core ./internal/obs ./internal/origin

vet:
	go vet ./...

fmt:
	gofmt -l -w .

bench:
	go test -bench=. -benchmem
